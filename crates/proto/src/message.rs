//! Request/response messages of the `gedd` protocol.
//!
//! Every request is one JSON object with a `cmd` field; every response
//! is one JSON object with an `ok` field. Error responses carry a
//! machine-readable `code` from a small closed taxonomy plus a
//! human-readable `error` message, so clients can branch without
//! string-matching prose. [`Delta`]/[`DeltaSet`] and
//! [`ValidationReport`] get explicit codecs here — the daemon and the
//! CLI never hand-roll field names.
//!
//! The attribute-value codec preserves the [`Value::Int`] /
//! [`Value::Float`] distinction (literal satisfaction distinguishes
//! `2` from `2.0`): the JSON writer emits integral floats with a
//! trailing `.0` and the parser classifies by the presence of a
//! fraction/exponent, so values survive a round trip bit-for-bit.

use crate::json::Json;
use ged_core::constraint::ViolationKind;
use ged_core::reason::ValidationReport;
use ged_core::satisfy::Violation;
use ged_graph::{sym, Delta, DeltaSet, NodeId, Value};

/// Wire protocol version, reported by `health`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error codes used in `{"ok":false,"code":...}`
/// responses.
pub mod code {
    /// The frame was not valid JSON (or not UTF-8).
    pub const MALFORMED: &str = "malformed";
    /// The frame exceeded the daemon's per-frame byte cap.
    pub const OVERSIZED: &str = "oversized";
    /// The `cmd` field named no known request.
    pub const UNKNOWN_CMD: &str = "unknown-cmd";
    /// The request object was structurally invalid (missing/mistyped
    /// fields, unknown delta op, …).
    pub const BAD_REQUEST: &str = "bad-request";
    /// The daemon is draining and no longer accepts writes.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The daemon failed internally while serving the request.
    pub const INTERNAL: &str = "internal";
}

/// A structured request-decoding failure: an error `code` from
/// [`code`] plus a message suitable for the `error` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> RequestError {
        RequestError {
            code: code::BAD_REQUEST,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RequestError {}

/// One request a client can make of the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply a batch of deltas (the single-writer path).
    Apply(DeltaSet),
    /// List the current violations with witnesses.
    Violations,
    /// Full validation report (per-rule summaries + witnesses).
    Report,
    /// Just the `G ⊨ Σ` bit and violation count.
    IsSatisfied,
    /// Engine metrics snapshot.
    Metrics,
    /// Liveness/identity probe.
    Health,
    /// Drain queued applies, publish the final epoch, stop serving.
    Shutdown,
}

impl Request {
    /// Encode as the wire object.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Apply(ds) => Json::obj(vec![
                ("cmd", Json::from("apply")),
                (
                    "deltas",
                    Json::Arr(ds.deltas().iter().map(delta_to_json).collect()),
                ),
            ]),
            Request::Violations => cmd_only("violations"),
            Request::Report => cmd_only("report"),
            Request::IsSatisfied => cmd_only("is_satisfied"),
            Request::Metrics => cmd_only("metrics"),
            Request::Health => cmd_only("health"),
            Request::Shutdown => cmd_only("shutdown"),
        }
    }

    /// Decode a wire object; failures carry the error code the daemon
    /// should reply with.
    pub fn from_json(json: &Json) -> Result<Request, RequestError> {
        let cmd = json
            .get_str("cmd")
            .ok_or_else(|| RequestError::bad("request object needs a string `cmd` field"))?;
        match cmd {
            "apply" => {
                let arr = json
                    .get_arr("deltas")
                    .ok_or_else(|| RequestError::bad("`apply` needs a `deltas` array"))?;
                let mut ds = DeltaSet::new();
                for (i, d) in arr.iter().enumerate() {
                    ds.push(
                        delta_from_json(d)
                            .map_err(|e| RequestError::bad(format!("deltas[{i}]: {e}")))?,
                    );
                }
                Ok(Request::Apply(ds))
            }
            "violations" => Ok(Request::Violations),
            "report" => Ok(Request::Report),
            "is_satisfied" => Ok(Request::IsSatisfied),
            "metrics" => Ok(Request::Metrics),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(RequestError {
                code: code::UNKNOWN_CMD,
                message: format!("unknown cmd {other:?}"),
            }),
        }
    }
}

fn cmd_only(cmd: &str) -> Json {
    Json::obj(vec![("cmd", Json::from(cmd))])
}

/// Encode one [`Value`]. `Int` and `Float` stay distinct on the wire
/// (the writer renders integral floats as `N.0`).
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

/// Decode one [`Value`]; arrays/objects/null are not attribute values.
pub fn value_from_json(json: &Json) -> Result<Value, String> {
    match json {
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        other => Err(format!("not an attribute value: {other}")),
    }
}

fn node_to_json(n: NodeId) -> Json {
    Json::Int(i64::from(n.0))
}

fn node_from_json(json: &Json) -> Result<NodeId, String> {
    match json.as_u64() {
        Some(id) if id <= u64::from(u32::MAX) => Ok(NodeId(id as u32)),
        _ => Err(format!("not a node id: {json}")),
    }
}

/// Encode one [`Delta`] as a tagged object (`{"op":"add_edge",...}`).
pub fn delta_to_json(d: &Delta) -> Json {
    match d {
        Delta::AddNode { label } => Json::obj(vec![
            ("op", Json::from("add_node")),
            ("label", Json::Str(label.name())),
        ]),
        Delta::RemoveNode { node } => Json::obj(vec![
            ("op", Json::from("remove_node")),
            ("node", node_to_json(*node)),
        ]),
        Delta::AddEdge { src, label, dst } => Json::obj(vec![
            ("op", Json::from("add_edge")),
            ("src", node_to_json(*src)),
            ("label", Json::Str(label.name())),
            ("dst", node_to_json(*dst)),
        ]),
        Delta::RemoveEdge { src, label, dst } => Json::obj(vec![
            ("op", Json::from("remove_edge")),
            ("src", node_to_json(*src)),
            ("label", Json::Str(label.name())),
            ("dst", node_to_json(*dst)),
        ]),
        Delta::SetAttr { node, attr, value } => Json::obj(vec![
            ("op", Json::from("set_attr")),
            ("node", node_to_json(*node)),
            ("attr", Json::Str(attr.name())),
            ("value", value_to_json(value)),
        ]),
        Delta::DelAttr { node, attr } => Json::obj(vec![
            ("op", Json::from("del_attr")),
            ("node", node_to_json(*node)),
            ("attr", Json::Str(attr.name())),
        ]),
    }
}

/// Decode one [`Delta`] from its tagged-object form.
pub fn delta_from_json(json: &Json) -> Result<Delta, String> {
    let op = json
        .get_str("op")
        .ok_or_else(|| "delta object needs a string `op` field".to_string())?;
    let node = |field: &str| -> Result<NodeId, String> {
        node_from_json(
            json.get(field)
                .ok_or_else(|| format!("`{op}` needs `{field}`"))?,
        )
    };
    let name = |field: &str| -> Result<String, String> {
        json.get_str(field)
            .map(str::to_string)
            .ok_or_else(|| format!("`{op}` needs a string `{field}`"))
    };
    match op {
        "add_node" => Ok(Delta::AddNode {
            label: sym(&name("label")?),
        }),
        "remove_node" => Ok(Delta::RemoveNode {
            node: node("node")?,
        }),
        "add_edge" => Ok(Delta::AddEdge {
            src: node("src")?,
            label: sym(&name("label")?),
            dst: node("dst")?,
        }),
        "remove_edge" => Ok(Delta::RemoveEdge {
            src: node("src")?,
            label: sym(&name("label")?),
            dst: node("dst")?,
        }),
        "set_attr" => Ok(Delta::SetAttr {
            node: node("node")?,
            attr: sym(&name("attr")?),
            value: value_from_json(
                json.get("value")
                    .ok_or_else(|| "`set_attr` needs `value`".to_string())?,
            )?,
        }),
        "del_attr" => Ok(Delta::DelAttr {
            node: node("node")?,
            attr: sym(&name("attr")?),
        }),
        other => Err(format!("unknown delta op {other:?}")),
    }
}

/// Build the shared `{"ok":true,...}` envelope around response fields.
pub fn ok_response(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::obj(all)
}

/// Build an `{"ok":false,"code":...,"error":...}` response.
pub fn err_response(code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", Json::from(code)),
        ("error", Json::from(message)),
    ])
}

/// One violation as carried on the wire: rule name, the witness
/// assignment, and the failure kind rendered with `Debug` (exactly the
/// string the in-process lockstep ledgers use, so protocol-level tests
/// compare witness sets without a reverse codec for [`ViolationKind`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WireViolation {
    /// Name of the violated rule.
    pub rule: String,
    /// The witness match (pattern-variable order).
    pub assignment: Vec<NodeId>,
    /// `format!("{:?}", kind)` of the [`ViolationKind`].
    pub kind: String,
}

/// Encode one in-process [`Violation`] for the wire.
pub fn violation_to_json(v: &Violation) -> Json {
    wire_violation_to_json(&v.ged_name, &v.assignment, &v.kind)
}

fn wire_violation_to_json(rule: &str, assignment: &[NodeId], kind: &ViolationKind) -> Json {
    Json::obj(vec![
        ("rule", Json::from(rule)),
        (
            "assignment",
            Json::Arr(assignment.iter().map(|n| node_to_json(*n)).collect()),
        ),
        ("kind", Json::Str(format!("{kind:?}"))),
    ])
}

/// Decode one wire violation object.
pub fn violation_from_json(json: &Json) -> Result<WireViolation, String> {
    let rule = json
        .get_str("rule")
        .ok_or_else(|| "violation needs a string `rule`".to_string())?
        .to_string();
    let assignment = json
        .get_arr("assignment")
        .ok_or_else(|| "violation needs an `assignment` array".to_string())?
        .iter()
        .map(node_from_json)
        .collect::<Result<Vec<NodeId>, String>>()?;
    let kind = json
        .get_str("kind")
        .ok_or_else(|| "violation needs a string `kind`".to_string())?
        .to_string();
    Ok(WireViolation {
        rule,
        assignment,
        kind,
    })
}

/// Encode a full [`ValidationReport`] plus the epoch it was pinned at.
pub fn report_to_json(epoch: u64, report: &ValidationReport) -> Json {
    ok_response(vec![
        ("epoch", Json::from(epoch)),
        ("satisfied", Json::Bool(report.satisfied())),
        ("total", Json::from(report.violations.len())),
        (
            "rules",
            Json::Arr(
                report
                    .per_ged
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::from(r.name.as_str())),
                            ("violations", Json::from(r.violation_count)),
                            ("satisfied", Json::Bool(r.satisfied)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations",
            Json::Arr(report.violations.iter().map(violation_to_json).collect()),
        ),
    ])
}

/// Decoded `report` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportReply {
    /// Batch boundary the report was pinned at.
    pub epoch: u64,
    /// `G ⊨ Σ`?
    pub satisfied: bool,
    /// Per-rule (name, violation count, satisfied) rows in Σ order.
    pub rules: Vec<(String, u64, bool)>,
    /// All witnesses, Σ order then per-rule sorted.
    pub violations: Vec<WireViolation>,
}

/// Decode a `report` response body (after the `ok` check).
pub fn report_from_json(json: &Json) -> Result<ReportReply, String> {
    let epoch = json
        .get_u64("epoch")
        .ok_or_else(|| "report needs `epoch`".to_string())?;
    let satisfied = json
        .get_bool("satisfied")
        .ok_or_else(|| "report needs `satisfied`".to_string())?;
    let rules = json
        .get_arr("rules")
        .ok_or_else(|| "report needs `rules`".to_string())?
        .iter()
        .map(|r| {
            Ok((
                r.get_str("name")
                    .ok_or_else(|| "rule row needs `name`".to_string())?
                    .to_string(),
                r.get_u64("violations")
                    .ok_or_else(|| "rule row needs `violations`".to_string())?,
                r.get_bool("satisfied")
                    .ok_or_else(|| "rule row needs `satisfied`".to_string())?,
            ))
        })
        .collect::<Result<Vec<(String, u64, bool)>, String>>()?;
    let violations = json
        .get_arr("violations")
        .ok_or_else(|| "report needs `violations`".to_string())?
        .iter()
        .map(violation_from_json)
        .collect::<Result<Vec<WireViolation>, String>>()?;
    Ok(ReportReply {
        epoch,
        satisfied,
        rules,
        violations,
    })
}

/// Decoded `apply` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyReply {
    /// Epoch published by (or current after) this batch.
    pub epoch: u64,
    /// Deltas that actually changed the graph.
    pub applied: u64,
    /// Live violations after the batch.
    pub violations: u64,
    /// Witnesses dropped by the batch.
    pub removed: u64,
    /// Witnesses added by the batch.
    pub added: u64,
}

/// Decode an `apply` response body (after the `ok` check).
pub fn apply_from_json(json: &Json) -> Result<ApplyReply, String> {
    let field = |name: &str| {
        json.get_u64(name)
            .ok_or_else(|| format!("apply reply needs `{name}`"))
    };
    Ok(ApplyReply {
        epoch: field("epoch")?,
        applied: field("applied")?,
        violations: field("violations")?,
        removed: field("removed")?,
        added: field("added")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: &Request) -> Request {
        let json = req.to_json();
        // The wire carries text, not `Json` values: go through it.
        let text = json.to_string();
        Request::from_json(&Json::parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn query_requests_roundtrip() {
        for req in [
            Request::Violations,
            Request::Report,
            Request::IsSatisfied,
            Request::Metrics,
            Request::Health,
            Request::Shutdown,
        ] {
            assert_eq!(roundtrip(&req), req);
        }
    }

    #[test]
    fn apply_roundtrips_every_delta_shape() {
        let ds: DeltaSet = vec![
            Delta::AddNode {
                label: sym("person"),
            },
            Delta::RemoveNode { node: NodeId(3) },
            Delta::AddEdge {
                src: NodeId(1),
                label: sym("knows"),
                dst: NodeId(2),
            },
            Delta::RemoveEdge {
                src: NodeId(2),
                label: sym("knows"),
                dst: NodeId(2),
            },
            Delta::SetAttr {
                node: NodeId(1),
                attr: sym("age"),
                value: Value::Int(2),
            },
            Delta::SetAttr {
                node: NodeId(1),
                attr: sym("rating"),
                value: Value::Float(2.0),
            },
            Delta::SetAttr {
                node: NodeId(1),
                attr: sym("name"),
                value: Value::Str("ann \"q\"".to_string()),
            },
            Delta::SetAttr {
                node: NodeId(1),
                attr: sym("fake"),
                value: Value::Bool(true),
            },
            Delta::DelAttr {
                node: NodeId(1),
                attr: sym("age"),
            },
        ]
        .into();
        assert_eq!(roundtrip(&Request::Apply(ds.clone())), Request::Apply(ds));
    }

    #[test]
    fn int_float_distinction_survives_the_wire() {
        let int = value_to_json(&Value::Int(2)).to_string();
        let float = value_to_json(&Value::Float(2.0)).to_string();
        assert_eq!(int, "2");
        assert_eq!(float, "2.0");
        assert_eq!(
            value_from_json(&Json::parse(&int).unwrap()).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            value_from_json(&Json::parse(&float).unwrap()).unwrap(),
            Value::Float(2.0)
        );
    }

    #[test]
    fn decode_failures_carry_codes() {
        let e = Request::from_json(&Json::parse("{\"cmd\":\"frobnicate\"}").unwrap()).unwrap_err();
        assert_eq!(e.code, code::UNKNOWN_CMD);
        let e = Request::from_json(&Json::parse("{\"cmd\":\"apply\"}").unwrap()).unwrap_err();
        assert_eq!(e.code, code::BAD_REQUEST);
        let e = Request::from_json(
            &Json::parse("{\"cmd\":\"apply\",\"deltas\":[{\"op\":\"warp\"}]}").unwrap(),
        )
        .unwrap_err();
        assert_eq!(e.code, code::BAD_REQUEST);
        assert!(e.message.contains("deltas[0]"), "{}", e.message);
        let e = Request::from_json(&Json::parse("[1,2]").unwrap()).unwrap_err();
        assert_eq!(e.code, code::BAD_REQUEST);
    }

    #[test]
    fn responses_carry_the_ok_envelope() {
        let ok = ok_response(vec![("epoch", Json::from(4u64))]);
        assert_eq!(ok.get_bool("ok"), Some(true));
        assert_eq!(ok.get_u64("epoch"), Some(4));
        let err = err_response(code::MALFORMED, "bad line");
        assert_eq!(err.get_bool("ok"), Some(false));
        assert_eq!(err.get_str("code"), Some(code::MALFORMED));
    }

    #[test]
    fn report_roundtrips() {
        use ged_core::reason::{GedReport, ValidationReport};
        let report = ValidationReport {
            per_ged: vec![
                GedReport {
                    name: "keys".to_string(),
                    violation_count: 1,
                    satisfied: false,
                },
                GedReport {
                    name: "ages".to_string(),
                    violation_count: 0,
                    satisfied: true,
                },
            ],
            violations: vec![Violation {
                ged_name: "keys".to_string(),
                assignment: vec![NodeId(4), NodeId(7)],
                kind: ViolationKind::Disjunction,
            }],
        };
        let json = Json::parse(&report_to_json(3, &report).to_string()).unwrap();
        let reply = report_from_json(&json).unwrap();
        assert_eq!(reply.epoch, 3);
        assert!(!reply.satisfied);
        assert_eq!(reply.rules.len(), 2);
        assert_eq!(reply.rules[0], ("keys".to_string(), 1, false));
        assert_eq!(reply.violations.len(), 1);
        assert_eq!(reply.violations[0].assignment, vec![NodeId(4), NodeId(7)]);
        assert_eq!(
            reply.violations[0].kind,
            format!("{:?}", ViolationKind::Disjunction)
        );
    }
}
