//! Blocking TCP client for the `gedd` protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (the protocol is strict request→response per frame). Both `gedctl`
//! and the end-to-end test harness drive the daemon through this type,
//! so a protocol change breaks exactly one call site per request kind.

use crate::json::Json;
use crate::message::{
    apply_from_json, report_from_json, violation_from_json, ApplyReply, ReportReply, Request,
    WireViolation,
};
use crate::wire::{read_frame, write_frame, WireError, DEFAULT_MAX_FRAME};
use ged_graph::DeltaSet;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing layer failed.
    Wire(WireError),
    /// The daemon closed the connection instead of replying.
    ConnectionClosed,
    /// The daemon replied `ok:false` with this code and message.
    Server {
        /// Machine-readable error code (see [`crate::message::code`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The reply was `ok:true` but missing expected fields.
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::ConnectionClosed => write!(f, "daemon closed the connection"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Decode(m) => write!(f, "undecodable reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Wire(WireError::Io(e))
    }
}

impl ClientError {
    /// The server-side error code, when the failure was a structured
    /// `ok:false` reply.
    pub fn server_code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// Decoded `health` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReply {
    /// Protocol version the daemon speaks.
    pub protocol: u64,
    /// Most recently published epoch.
    pub epoch: u64,
    /// Rules in Σ.
    pub rules: u64,
    /// Live read-view handles daemon-side.
    pub readers: u64,
}

/// One blocking protocol connection.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connect with the default frame cap.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Wrap an already-connected stream (lets tests set timeouts first).
    pub fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Cap how large a reply this client will buffer.
    pub fn set_max_frame(&mut self, max_frame: usize) {
        self.max_frame = max_frame;
    }

    /// Set a read timeout on replies (`None` blocks forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one raw frame and read one reply frame, without interpreting
    /// the `ok` envelope. Fault-injection tests use this to deliver
    /// hostile payloads.
    pub fn round_trip(&mut self, frame: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.writer, frame)?;
        self.read_reply()
    }

    /// Read the next reply frame (for callers that pipelined requests).
    pub fn read_reply(&mut self) -> Result<Json, ClientError> {
        match read_frame(&mut self.reader, self.max_frame)? {
            Some(json) => Ok(json),
            None => Err(ClientError::ConnectionClosed),
        }
    }

    /// Send one frame without waiting for the reply (pipelining).
    pub fn send(&mut self, frame: &Json) -> Result<(), ClientError> {
        write_frame(&mut self.writer, frame)?;
        Ok(())
    }

    /// Issue a typed request and unwrap the `ok` envelope: `ok:false`
    /// replies become [`ClientError::Server`].
    pub fn request(&mut self, req: &Request) -> Result<Json, ClientError> {
        let reply = self.round_trip(&req.to_json())?;
        unwrap_ok(reply)
    }

    /// Apply a delta batch; the reply carries the epoch it published.
    pub fn apply(&mut self, deltas: DeltaSet) -> Result<ApplyReply, ClientError> {
        let reply = self.request(&Request::Apply(deltas))?;
        apply_from_json(&reply).map_err(ClientError::Decode)
    }

    /// Current violations with witnesses, plus the pinned epoch.
    pub fn violations(&mut self) -> Result<(u64, Vec<WireViolation>), ClientError> {
        let reply = self.request(&Request::Violations)?;
        let epoch = need_u64(&reply, "epoch")?;
        let list = reply
            .get_arr("violations")
            .ok_or_else(|| ClientError::Decode("reply needs `violations`".to_string()))?
            .iter()
            .map(violation_from_json)
            .collect::<Result<Vec<WireViolation>, String>>()
            .map_err(ClientError::Decode)?;
        Ok((epoch, list))
    }

    /// Full validation report.
    pub fn report(&mut self) -> Result<ReportReply, ClientError> {
        let reply = self.request(&Request::Report)?;
        report_from_json(&reply).map_err(ClientError::Decode)
    }

    /// `(epoch, G ⊨ Σ, violation count)`, all pinned to one snapshot.
    pub fn is_satisfied(&mut self) -> Result<(u64, bool, u64), ClientError> {
        let reply = self.request(&Request::IsSatisfied)?;
        Ok((
            need_u64(&reply, "epoch")?,
            reply
                .get_bool("satisfied")
                .ok_or_else(|| ClientError::Decode("reply needs `satisfied`".to_string()))?,
            need_u64(&reply, "violations")?,
        ))
    }

    /// Engine metrics as a JSON object (schema owned by `ged-engine`).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let reply = self.request(&Request::Metrics)?;
        reply
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Decode("reply needs `metrics`".to_string()))
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<HealthReply, ClientError> {
        let reply = self.request(&Request::Health)?;
        Ok(HealthReply {
            protocol: need_u64(&reply, "protocol")?,
            epoch: need_u64(&reply, "epoch")?,
            rules: need_u64(&reply, "rules")?,
            readers: need_u64(&reply, "readers")?,
        })
    }

    /// Ask the daemon to drain and stop; returns the final epoch.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        let reply = self.request(&Request::Shutdown)?;
        need_u64(&reply, "final_epoch")
    }
}

/// Split an `ok` envelope: `ok:true` passes the body through, `ok:false`
/// becomes a [`ClientError::Server`].
pub fn unwrap_ok(reply: Json) -> Result<Json, ClientError> {
    match reply.get_bool("ok") {
        Some(true) => Ok(reply),
        Some(false) => Err(ClientError::Server {
            code: reply.get_str("code").unwrap_or("internal").to_string(),
            message: reply.get_str("error").unwrap_or("").to_string(),
        }),
        None => Err(ClientError::Decode(format!(
            "reply lacks an `ok` field: {reply}"
        ))),
    }
}

fn need_u64(reply: &Json, field: &str) -> Result<u64, ClientError> {
    reply
        .get_u64(field)
        .ok_or_else(|| ClientError::Decode(format!("reply needs `{field}`")))
}
