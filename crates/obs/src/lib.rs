//! # ged-obs — observability primitives for the GED engine stack
//!
//! A std-only, dependency-free metrics toolkit in the vendored style of
//! the rest of the workspace (the build environment has no crates.io
//! access). The engine's instrumentation needs exactly three things, and
//! this crate supplies nothing more:
//!
//! * [`metric`] — the **lock-free registry primitives**: monotonic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s
//!   with p50/p95/p99 readout. All writes are relaxed atomic adds (no
//!   locks, no CAS loops); readers aggregate on demand via
//!   [`Histogram::snapshot`]. For code that is hot enough that even an
//!   uncontended atomic add is too much, [`LocalHistogram`] and plain
//!   `u64` tallies accumulate unsynchronized in a per-worker shard and
//!   merge into the shared registry once per batch — aggregation happens
//!   on *read*, not on the hot path.
//! * [`recorder`] — the **zero-cost-when-disabled hook** for the matcher
//!   hot loop: a [`MatchRecorder`] trait with a unit [`NoopRecorder`]
//!   (monomorphizes to nothing) and a [`CellRecorder`] that tallies into
//!   `Cell<u64>`s for single-threaded enumeration inside one work unit.
//! * [`trace`] — a bounded, overwrite-oldest [`TraceRing`] of structured
//!   events (the engine records one per apply batch), dumpable on demand
//!   or on panic.
//!
//! The crate sits below `ged-pattern` in the dependency order so the
//! matcher itself can accept a recorder; nothing here knows about graphs,
//! patterns, or constraints.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod metric;
pub mod recorder;
pub mod trace;

pub use metric::{
    fmt_ns, Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram, BUCKET_COUNT,
};
pub use recorder::{CellRecorder, MatchRecorder, NoopRecorder, NOOP};
pub use trace::TraceRing;
