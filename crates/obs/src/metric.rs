//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! latency histograms.
//!
//! Everything writes with relaxed atomic adds — monotonic tallies need no
//! ordering, and readers only ever see a slightly stale but internally
//! consistent-enough view (a snapshot is a statistical readout, not a
//! linearization point). The histogram buckets are a fixed geometric
//! ladder (powers of two from 256 ns), so recording is an index
//! computation plus one add: no allocation, no locks, no resizing.
//!
//! For hot loops where even an uncontended atomic add per event is too
//! much, [`LocalHistogram`] (and plain `u64` tallies) accumulate
//! unsynchronized in per-worker shards; [`Histogram::merge_local`] folds
//! a shard into the shared registry in one pass. Aggregation is paid on
//! read, not per event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: powers of two from 256 ns up to ~8.6 s,
/// plus one overflow bucket.
pub const BUCKET_COUNT: usize = 27;

/// Inclusive upper bound of bucket `i` in nanoseconds (`u64::MAX` for the
/// overflow bucket).
fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        256u64 << i
    }
}

/// The bucket a sample of `ns` nanoseconds lands in: the first bucket
/// whose bound is ≥ `ns`.
fn bucket_index(ns: u64) -> usize {
    if ns <= 256 {
        return 0;
    }
    let ceil_log2 = (64 - (ns - 1).leading_zeros()) as usize;
    (ceil_log2 - 8).min(BUCKET_COUNT - 1)
}

/// A monotonic counter. Writes are relaxed atomic adds; reads are relaxed
/// loads. Cloning copies the current value into an independent counter
/// (the engine's validator is `Clone`, and a clone must not share tallies
/// with its original).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Counter {
        Counter(AtomicU64::new(self.get()))
    }
}

/// A last-write-wins gauge for level quantities (store size, live slots).
/// Same relaxed-atomic discipline as [`Counter`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Gauge {
        Gauge(AtomicU64::new(self.get()))
    }
}

/// A fixed-bucket latency histogram over nanosecond samples.
///
/// Buckets are a geometric ladder (doubling from 256ns); recording is one
/// relaxed add into the matching bucket plus count/sum/max bookkeeping —
/// lock-free and allocation-free. Quantiles come from
/// [`Histogram::snapshot`], which aggregates on read.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one [`Duration`] sample.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold a per-worker [`LocalHistogram`] shard into this histogram —
    /// the read-side aggregation step of the per-worker sharding scheme.
    pub fn merge_local(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum_ns.fetch_add(local.sum_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(local.max_ns, Ordering::Relaxed);
        for (b, &n) in self.buckets.iter().zip(&local.buckets) {
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Aggregate the current state into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Histogram {
        let h = Histogram::new();
        h.count
            .store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        h.sum_ns
            .store(self.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        h.max_ns
            .store(self.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        for (dst, src) in h.buckets.iter().zip(&self.buckets) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        h
    }
}

/// An unsynchronized histogram shard for one worker: identical bucket
/// ladder, plain `u64` tallies, no atomics. Workers record into their own
/// shard during a parallel pass and the coordinator merges shards into
/// the shared [`Histogram`] after joining — the hot path pays zero
/// synchronization.
#[derive(Debug, Clone, Default)]
pub struct LocalHistogram {
    count: u64,
    sum_ns: u64,
    max_ns: u64,
    buckets: [u64; BUCKET_COUNT],
}

impl LocalHistogram {
    /// An empty shard.
    pub fn new() -> LocalHistogram {
        LocalHistogram::default()
    }

    /// Record one sample of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Record one [`Duration`] sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// An immutable aggregate of a [`Histogram`]: sample count, total and max
/// latency, and per-bucket counts, with quantile readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded sample in nanoseconds.
    pub max_ns: u64,
    /// Per-bucket sample counts ([`BUCKET_COUNT`] entries, geometric
    /// bounds from 256 ns).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (0 < q ≤ 1) in nanoseconds: the upper bound of
    /// the bucket holding the sample of that rank, capped at the observed
    /// maximum (so the overflow bucket reports the real max, not ∞).
    /// Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency in nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Format a nanosecond quantity with an adaptive unit (`ns`, `µs`, `ms`,
/// `s`) for human-readable metric dumps.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_clones_independently() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let d = c.clone();
        c.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(d.get(), 5, "clone is a copy, not a shared handle");
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        g.set(10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for (ns, want) in [(0u64, 0usize), (256, 0), (257, 1), (512, 1), (513, 2)] {
            assert_eq!(bucket_index(ns), want, "ns={ns}");
        }
        // Every sample lands in a bucket whose bound covers it.
        for ns in [1u64, 300, 1_000, 65_000, 1_000_000, u64::MAX] {
            let i = bucket_index(ns);
            assert!(bucket_bound(i) >= ns);
            if i > 0 {
                assert!(bucket_bound(i - 1) < ns, "ns={ns} fits an earlier bucket");
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds_capped_at_max() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record_ns(1_000); // bucket bound 1024
        }
        h.record_ns(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns(), 1024);
        assert_eq!(s.p95_ns(), 1024);
        assert_eq!(s.p99_ns(), 1024);
        assert_eq!(s.quantile_ns(1.0), 1_000_000, "max caps the top bucket");
        assert_eq!(s.mean_ns(), (99 * 1_000 + 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns(), 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn local_shards_merge_like_direct_recording() {
        let direct = Histogram::new();
        let sharded = Histogram::new();
        let mut shards = [LocalHistogram::new(), LocalHistogram::new()];
        for (i, ns) in [100u64, 5_000, 90_000, 1_000_000, 300].iter().enumerate() {
            direct.record_ns(*ns);
            shards[i % 2].record_ns(*ns);
        }
        for s in &shards {
            sharded.merge_local(s);
        }
        assert_eq!(direct.snapshot(), sharded.snapshot());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(2_500), "2.5µs");
        assert_eq!(fmt_ns(3_250_000), "3.25ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.50s");
    }
}
