//! The matcher's instrumentation hook: a recorder trait that costs
//! nothing when observation is off.
//!
//! The backtracking matcher is the engine's innermost loop — millions of
//! candidate checks per validation pass — so its instrumentation cannot
//! be a branch on a runtime flag per candidate. Instead the matcher is
//! generic over a [`MatchRecorder`], defaulting to [`NoopRecorder`]:
//! the no-op methods monomorphize away entirely, leaving the
//! uninstrumented build byte-for-byte the loop it always was. Observed
//! enumeration passes a [`CellRecorder`] instead, which tallies into
//! `Cell<u64>`s — each matcher run happens inside one work unit on one
//! worker thread, so no synchronization is needed; the worker's shard
//! merges the tallies after the unit completes.

use std::cell::Cell;

/// Observer of the matcher hot loop. `on_attempt` fires once per
/// candidate node considered for a variable (before exclusion and
/// consistency checks); `on_match` fires once per complete match
/// delivered to the caller.
///
/// Methods take `&self` so the matcher can hold a shared reference; the
/// provided implementations are empty, so a recorder only pays for what
/// it overrides.
pub trait MatchRecorder {
    /// A candidate node was considered for a pattern variable.
    fn on_attempt(&self) {}

    /// `n` candidate nodes were considered at once. Attempts fire
    /// unconditionally per candidate in a list, so the matcher reports a
    /// whole candidate list in one call instead of paying a hook per
    /// node — equivalent counts, one tally per backtracking level.
    fn add_attempts(&self, n: u64) {
        for _ in 0..n {
            self.on_attempt();
        }
    }

    /// A complete match was found.
    fn on_match(&self) {}

    /// A candidate node was rejected by a cheap pre-filter (labeled-degree
    /// or constant-attribute check) *before* the consistency checks and the
    /// recursion below it. Pre-filter rejects are a subset of the attempts
    /// already tallied by [`MatchRecorder::add_attempts`] — the separate
    /// count shows how much of the candidate stream the filters kill.
    fn on_prefilter_reject(&self) {}
}

/// The do-nothing recorder: the matcher's default type parameter.
/// Monomorphizes to zero instructions — matching without observation
/// compiles to the same loop as before the hook existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl MatchRecorder for NoopRecorder {}

/// The canonical no-op recorder instance, usable wherever a
/// `&NoopRecorder` with any lifetime is needed.
pub static NOOP: NoopRecorder = NoopRecorder;

/// A single-threaded tally recorder: counts attempts and matches in
/// `Cell<u64>`s. One matcher run executes inside one work unit on one
/// worker, so interior mutability without synchronization is exactly
/// right; the worker merges the counts into its per-worker shard after
/// the unit finishes.
#[derive(Debug, Clone, Default)]
pub struct CellRecorder {
    attempts: Cell<u64>,
    matches: Cell<u64>,
    prefilter_rejects: Cell<u64>,
}

impl CellRecorder {
    /// A recorder with zeroed tallies.
    pub fn new() -> CellRecorder {
        CellRecorder::default()
    }

    /// Candidate nodes considered so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.get()
    }

    /// Complete matches found so far.
    pub fn matches(&self) -> u64 {
        self.matches.get()
    }

    /// Candidates killed by the matcher's pre-filters so far.
    pub fn prefilter_rejects(&self) -> u64 {
        self.prefilter_rejects.get()
    }
}

impl MatchRecorder for CellRecorder {
    fn on_attempt(&self) {
        self.attempts.set(self.attempts.get() + 1);
    }

    fn add_attempts(&self, n: u64) {
        self.attempts.set(self.attempts.get() + n);
    }

    fn on_match(&self) {
        self.matches.set(self.matches.get() + 1);
    }

    fn on_prefilter_reject(&self) {
        self.prefilter_rejects.set(self.prefilter_rejects.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_recorder_tallies() {
        let r = CellRecorder::new();
        r.on_attempt();
        r.on_attempt();
        r.on_match();
        r.on_prefilter_reject();
        assert_eq!(r.attempts(), 2);
        assert_eq!(r.matches(), 1);
        assert_eq!(r.prefilter_rejects(), 1);
    }

    #[test]
    fn noop_recorder_is_callable_via_the_trait() {
        fn drive<R: MatchRecorder>(r: &R) {
            r.on_attempt();
            r.on_match();
        }
        drive(&NOOP);
        let cell = CellRecorder::new();
        drive(&cell);
        assert_eq!(cell.attempts(), 1);
    }
}
