//! A bounded, overwrite-oldest ring of structured trace events.
//!
//! The engine records one event per apply batch; the ring keeps the last
//! `capacity` of them so the recent history can be dumped on demand or
//! when a maintenance pass panics. Pushing is a short critical section on
//! a plain mutex — the ring sits on the once-per-batch cold path, not in
//! any matcher loop, so lock-freedom buys nothing here.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded ring of `(sequence, event)` pairs that overwrites its oldest
/// entry when full. Sequence numbers are assigned at push time, start at
/// 1, and never repeat, so a dump shows both the events and how many fell
/// off the back.
#[derive(Debug, Default)]
pub struct TraceRing<T> {
    capacity: usize,
    inner: Mutex<Ring<T>>,
}

#[derive(Debug, Default)]
struct Ring<T> {
    next_seq: u64,
    buf: VecDeque<(u64, T)>,
}

impl<T> TraceRing<T> {
    /// A ring holding at most `capacity` events (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> TraceRing<T> {
        assert!(capacity >= 1, "a trace ring needs at least one slot");
        TraceRing {
            capacity,
            inner: Mutex::new(Ring {
                next_seq: 1,
                buf: VecDeque::with_capacity(capacity),
            }),
        }
    }

    /// Append an event, evicting the oldest if the ring is full. Returns
    /// the event's sequence number.
    pub fn push(&self, event: T) -> u64 {
        let mut ring = self.inner.lock().expect("trace ring poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back((seq, event));
        seq
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (retained or evicted).
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").next_seq - 1
    }
}

impl<T: Clone> TraceRing<T> {
    /// The retained events, oldest first, with their sequence numbers.
    pub fn recent(&self) -> Vec<(u64, T)> {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }
}

impl<T: Clone> Clone for TraceRing<T> {
    fn clone(&self) -> TraceRing<T> {
        let ring = self.inner.lock().expect("trace ring poisoned");
        TraceRing {
            capacity: self.capacity,
            inner: Mutex::new(Ring {
                next_seq: ring.next_seq,
                buf: ring.buf.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_sequence() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            assert_eq!(ring.push(i), i + 1, "sequences are 1-based and dense");
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.recent(), vec![(3, 2), (4, 3), (5, 4)]);
    }

    #[test]
    fn clone_copies_the_history() {
        let ring = TraceRing::new(2);
        ring.push("a");
        let copy = ring.clone();
        ring.push("b");
        assert_eq!(copy.recent(), vec![(1, "a")], "clone is independent");
        assert_eq!(ring.recent(), vec![(1, "a"), (2, "b")]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = TraceRing::<u32>::new(0);
    }
}
