//! `gedd` — serve a validation workload over TCP.
//!
//! ```text
//! gedd [--addr HOST:PORT] [--workload SPEC] [--threads N] [--max-frame BYTES]
//! ```
//!
//! Runs until a client sends `shutdown` (see `gedctl shutdown`), then
//! drains queued applies, publishes the final epoch, and exits 0.

use ged_daemon::{spawn, workload, DaemonConfig};
use std::process::ExitCode;

const USAGE: &str = "\
gedd — GED/GDC/GED∨ validation daemon

USAGE:
    gedd [OPTIONS]

OPTIONS:
    --addr HOST:PORT     listen address (default 127.0.0.1:7411; port 0 = ephemeral)
    --workload SPEC      initial graph + Σ (default mixed:honest=30,plants=2,seed=11)
                         specs: empty | mixed:honest=N,plants=P,seed=S
                              | random:nodes=N,rules=R,seed=S
    --threads N          validator match threads (default 1)
    --max-frame BYTES    per-request frame cap (default 8388608)
    -h, --help           print this help
";

fn main() -> ExitCode {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7411".to_string(),
        ..Default::default()
    };
    let mut spec = "mixed:honest=30,plants=2,seed=11".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--workload" => value("--workload").map(|v| spec = v),
            "--threads" => value("--threads").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| config.threads = n.max(1))
                    .map_err(|_| format!("--threads {v}: not a number"))
            }),
            "--max-frame" => value("--max-frame").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| config.max_frame = n)
                    .map_err(|_| format!("--max-frame {v}: not a number"))
            }),
            other => Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        };
        if let Err(message) = result {
            eprintln!("gedd: {message}");
            return ExitCode::from(2);
        }
    }

    let (graph, sigma) = match workload::load(&spec) {
        Ok(loaded) => loaded,
        Err(message) => {
            eprintln!("gedd: {message}");
            return ExitCode::from(2);
        }
    };
    let nodes = graph.node_count();
    let rules = sigma.len();
    let handle = match spawn(graph, sigma, &config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("gedd: cannot listen on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gedd listening on {} (workload {spec}: {nodes} nodes, {rules} rules)",
        handle.addr()
    );
    let final_epoch = handle.join();
    println!("gedd: shutdown complete at epoch {final_epoch}");
    ExitCode::SUCCESS
}
