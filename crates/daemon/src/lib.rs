//! `gedd`: the long-lived validation daemon.
//!
//! The library half of the daemon binary, kept separate so the
//! end-to-end suites (`tests/daemon*.rs`), the examples, and the
//! EXP-DAEMON harness can [`spawn`] a real server in-process on an
//! ephemeral port and talk to it over actual TCP — the binary in
//! `src/bin/gedd.rs` is a thin flag-parsing shell around the same
//! [`spawn`].
//!
//! A daemon owns one
//! [`IncrementalValidator<SigmaConstraint>`](ged_engine::IncrementalValidator)
//! and serves the `ged-proto` wire protocol: `apply` batches are
//! funneled to the single writer thread, every query answers from a
//! cloned snapshot-isolated [`ReadView`](ged_engine::ReadView) on the
//! connection's own thread. See [`server`] for the threading model and
//! shutdown choreography, [`workload`] for the `--workload` spec
//! grammar.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod server;
pub mod workload;

pub use server::{spawn, DaemonConfig, DaemonHandle};
