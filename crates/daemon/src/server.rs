//! The `gedd` server: one writer thread owning the
//! [`IncrementalValidator`], one accept thread, and a detached handler
//! thread per connection (DESIGN.md §10).
//!
//! The threading model is the wire-level image of the engine's
//! one-writer/many-readers split (PR 9): `apply` requests are forwarded
//! over an mpsc channel to the single writer thread — the only code
//! that ever holds `&mut` on the validator — while every query request
//! is answered on the connection's own thread from a cloned
//! [`ReadView`], pinning one published snapshot per request. Queries
//! therefore never block behind a batch, and two clients racing `apply`
//! are serialized by the channel, not by a lock.
//!
//! Graceful shutdown: on a `shutdown` request the writer drains every
//! apply already queued (each still gets its normal reply), answers
//! with the final published epoch, and exits; the handler then flips
//! the shutdown flag and wakes the accept thread with a self-connect so
//! it drops the listener. Connections that were already open keep
//! answering queries off the final snapshot; their `apply`s get a
//! structured `shutting-down` error.

use ged_engine::validator::{ApplyStats, IncrementalValidator};
use ged_engine::view::ReadView;
use ged_ext::SigmaConstraint;
use ged_graph::{DeltaSet, Graph};
use ged_proto::json::Json;
use ged_proto::message::{
    code, err_response, ok_response, report_to_json, violation_to_json, Request, PROTOCOL_VERSION,
};
use ged_proto::wire::{read_frame, write_frame, WireError, DEFAULT_MAX_FRAME};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Per-frame byte cap enforced on incoming requests.
    pub max_frame: usize,
    /// Match threads for the validator's enumeration pool.
    pub threads: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame: DEFAULT_MAX_FRAME,
            threads: 1,
        }
    }
}

/// What the writer thread sends back for one applied batch.
#[derive(Debug)]
struct ApplyOutcome {
    epoch: u64,
    stats: ApplyStats,
    violations: usize,
}

/// Messages into the single writer thread.
enum WriterMsg {
    Apply(DeltaSet, mpsc::Sender<ApplyOutcome>),
    Shutdown(mpsc::Sender<u64>),
}

impl std::fmt::Debug for WriterMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriterMsg::Apply(ds, _) => f.debug_tuple("Apply").field(&ds.len()).finish(),
            WriterMsg::Shutdown(_) => f.write_str("Shutdown"),
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`DaemonHandle::stop`] (in-process) or send a `shutdown`
/// request over the wire, then [`DaemonHandle::join`].
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    tx: mpsc::Sender<WriterMsg>,
    shutting_down: Arc<AtomicBool>,
    /// Fallback epoch source when the writer has already exited (a wire
    /// shutdown won the race) — mirrors the wire path's fallback.
    view: ReadView<SigmaConstraint>,
    writer: Option<thread::JoinHandle<u64>>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The address the daemon is listening on (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Trigger shutdown from the owning process: drain queued applies,
    /// publish the final epoch, close the listener. Returns the final
    /// epoch. Idempotent with a wire-side `shutdown`.
    pub fn stop(&self) -> u64 {
        let (reply_tx, reply_rx) = mpsc::channel();
        // Either fallback arm means the writer already exited (a wire
        // `shutdown` won the race), so the published epoch is final.
        let final_epoch = if self.tx.send(WriterMsg::Shutdown(reply_tx)).is_ok() {
            reply_rx.recv().unwrap_or_else(|_| self.view.epoch())
        } else {
            self.view.epoch()
        };
        wake_acceptor(&self.shutting_down, self.addr);
        final_epoch
    }

    /// Wait for the writer and accept threads to exit (shutdown must
    /// have been triggered, via [`stop`](DaemonHandle::stop) or a wire
    /// `shutdown` request). Returns the final published epoch.
    pub fn join(mut self) -> u64 {
        let final_epoch = self
            .writer
            .take()
            .map_or(0, |h| h.join().expect("writer thread panicked"));
        if let Some(h) = self.acceptor.take() {
            h.join().expect("accept thread panicked");
        }
        final_epoch
    }
}

/// Set the shutdown flag and unblock the accept thread's blocking
/// `accept()` with a throwaway self-connection.
fn wake_acceptor(flag: &AtomicBool, addr: SocketAddr) {
    flag.store(true, Ordering::SeqCst);
    // If the connect fails the listener is already gone — fine either way.
    drop(TcpStream::connect(addr));
}

/// Everything a connection handler needs, cheap to clone per connection.
struct ConnCtx {
    view: ReadView<SigmaConstraint>,
    tx: mpsc::Sender<WriterMsg>,
    shutting_down: Arc<AtomicBool>,
    rules: usize,
    max_frame: usize,
    addr: SocketAddr,
}

impl Clone for ConnCtx {
    fn clone(&self) -> ConnCtx {
        ConnCtx {
            view: self.view.clone(),
            tx: self.tx.clone(),
            shutting_down: Arc::clone(&self.shutting_down),
            rules: self.rules,
            max_frame: self.max_frame,
            addr: self.addr,
        }
    }
}

/// Start a daemon serving `sigma` over `graph` on `config.addr`.
///
/// The validator is seeded (initial full validation) and its read views
/// are activated before the listener opens, so the first query ever
/// answered already sees epoch 0 = the loaded graph.
pub fn spawn(
    graph: Graph,
    sigma: Vec<SigmaConstraint>,
    config: &DaemonConfig,
) -> std::io::Result<DaemonHandle> {
    let rules = sigma.len();
    let validator = IncrementalValidator::with_threads(graph, sigma, config.threads);
    let view = validator.read_view();

    let listener = TcpListener::bind(resolve(&config.addr)?)?;
    let addr = listener.local_addr()?;

    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let writer = thread::Builder::new()
        .name("gedd-writer".to_string())
        .spawn(move || writer_loop(validator, &rx))?;

    let shutting_down = Arc::new(AtomicBool::new(false));
    let handle_view = view.clone();
    let ctx = ConnCtx {
        view,
        tx: tx.clone(),
        shutting_down: Arc::clone(&shutting_down),
        rules,
        max_frame: config.max_frame,
        addr,
    };
    let accept_flag = Arc::clone(&shutting_down);
    let acceptor = thread::Builder::new()
        .name("gedd-accept".to_string())
        .spawn(move || accept_loop(&listener, &ctx, &accept_flag))?;

    Ok(DaemonHandle {
        addr,
        tx,
        shutting_down,
        view: handle_view,
        writer: Some(writer),
        acceptor: Some(acceptor),
    })
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("address {addr:?} resolved to nothing"),
        )
    })
}

/// The single writer: the only thread that ever mutates the validator.
/// Returns the final published epoch once a shutdown drains the queue.
fn writer_loop(
    mut validator: IncrementalValidator<SigmaConstraint>,
    rx: &mpsc::Receiver<WriterMsg>,
) -> u64 {
    let apply = |validator: &mut IncrementalValidator<SigmaConstraint>,
                 ds: DeltaSet,
                 reply: &mpsc::Sender<ApplyOutcome>| {
        let stats = validator.apply_all(&ds);
        // A dead reply sender means the client vanished mid-request; the
        // batch is still applied (it was accepted), the reply is dropped.
        reply
            .send(ApplyOutcome {
                epoch: validator.published_epoch(),
                stats,
                violations: validator.violation_count(),
            })
            .ok();
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Apply(ds, reply) => apply(&mut validator, ds, &reply),
            WriterMsg::Shutdown(reply) => {
                // Drain: every batch already accepted into the queue is
                // applied and answered before the final epoch is fixed.
                let mut shutdown_replies = vec![reply];
                while let Ok(queued) = rx.try_recv() {
                    match queued {
                        WriterMsg::Apply(ds, reply) => apply(&mut validator, ds, &reply),
                        WriterMsg::Shutdown(reply) => shutdown_replies.push(reply),
                    }
                }
                let final_epoch = validator.published_epoch();
                for reply in shutdown_replies {
                    reply.send(final_epoch).ok();
                }
                return final_epoch;
            }
        }
    }
    // All senders dropped without a shutdown (handle and conns gone).
    validator.published_epoch()
}

fn accept_loop(listener: &TcpListener, ctx: &ConnCtx, shutting_down: &AtomicBool) {
    loop {
        let conn = listener.accept();
        if shutting_down.load(Ordering::SeqCst) {
            // The wake connection (or any racer) is dropped unserved;
            // the listener closes when this function returns.
            return;
        }
        let Ok((stream, _peer)) = conn else { continue };
        let conn_ctx = ctx.clone();
        // Detached: the handler lives as long as its client (or the
        // process). Queries after shutdown still answer off the final
        // snapshot; nothing joins these.
        thread::Builder::new()
            .name("gedd-conn".to_string())
            .spawn(move || handle_conn(stream, &conn_ctx))
            .ok();
    }
}

/// Serve one connection: strict request→response per frame, in order.
fn handle_conn(stream: TcpStream, ctx: &ConnCtx) {
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader, ctx.max_frame) {
            Ok(Some(frame)) => frame,
            // Clean EOF, a vanished peer, or transport failure: nothing
            // to answer, nobody to answer it to.
            Ok(None) | Err(WireError::Truncated | WireError::Io(_)) => return,
            Err(WireError::Oversized(n)) => {
                // The rest of the oversized line was not consumed, so the
                // stream cannot be re-synchronized: reply and hang up.
                let msg = format!("frame exceeds {} byte cap ({n}+ bytes)", ctx.max_frame);
                write_frame(&mut writer, &err_response(code::OVERSIZED, &msg)).ok();
                return;
            }
            Err(WireError::Malformed(m)) => {
                // The offending line was fully consumed; the connection
                // stays usable for the client's next request.
                if write_frame(&mut writer, &err_response(code::MALFORMED, &m)).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = respond(&frame, ctx);
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Compute the response for one well-formed JSON request frame.
fn respond(frame: &Json, ctx: &ConnCtx) -> Json {
    let request = match Request::from_json(frame) {
        Ok(request) => request,
        Err(e) => return err_response(e.code, &e.message),
    };
    match request {
        Request::Apply(ds) => respond_apply(ds, ctx),
        Request::Violations => {
            let snap = ctx.view.snapshot();
            let report = snap.to_report();
            ok_response(vec![
                ("epoch", Json::from(snap.epoch())),
                ("count", Json::from(report.violations.len())),
                (
                    "violations",
                    Json::Arr(report.violations.iter().map(violation_to_json).collect()),
                ),
            ])
        }
        Request::Report => {
            let snap = ctx.view.snapshot();
            report_to_json(snap.epoch(), &snap.to_report())
        }
        Request::IsSatisfied => {
            let snap = ctx.view.snapshot();
            ok_response(vec![
                ("epoch", Json::from(snap.epoch())),
                ("satisfied", Json::Bool(snap.is_satisfied())),
                ("violations", Json::from(snap.violation_count())),
            ])
        }
        Request::Metrics => {
            let text = ctx.view.metrics().to_json();
            match Json::parse(&text) {
                Ok(metrics) => ok_response(vec![
                    ("epoch", Json::from(ctx.view.epoch())),
                    ("metrics", metrics),
                ]),
                Err(e) => err_response(code::INTERNAL, &format!("metrics snapshot: {e}")),
            }
        }
        Request::Health => ok_response(vec![
            ("protocol", Json::from(PROTOCOL_VERSION)),
            ("epoch", Json::from(ctx.view.epoch())),
            ("rules", Json::from(ctx.rules)),
            ("readers", Json::from(ctx.view.metrics().read_views)),
        ]),
        Request::Shutdown => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let final_epoch = if ctx.tx.send(WriterMsg::Shutdown(reply_tx)).is_ok() {
                // A dropped reply means another shutdown won the race;
                // the published epoch is already final.
                reply_rx.recv().unwrap_or_else(|_| ctx.view.epoch())
            } else {
                ctx.view.epoch()
            };
            wake_acceptor(&ctx.shutting_down, ctx.addr);
            ok_response(vec![("final_epoch", Json::from(final_epoch))])
        }
    }
}

fn respond_apply(ds: DeltaSet, ctx: &ConnCtx) -> Json {
    if ctx.shutting_down.load(Ordering::SeqCst) {
        return err_response(code::SHUTTING_DOWN, "daemon is draining; writes refused");
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    if ctx.tx.send(WriterMsg::Apply(ds, reply_tx)).is_err() {
        return err_response(code::SHUTTING_DOWN, "writer has exited; writes refused");
    }
    match reply_rx.recv() {
        Ok(outcome) => ok_response(vec![
            ("epoch", Json::from(outcome.epoch)),
            ("applied", Json::from(outcome.stats.deltas_applied)),
            ("violations", Json::from(outcome.violations)),
            ("removed", Json::from(outcome.stats.violations_removed)),
            ("added", Json::from(outcome.stats.violations_added)),
            (
                "created",
                Json::Arr(
                    outcome
                        .stats
                        .created
                        .iter()
                        .map(|n| Json::from(u64::from(n.0)))
                        .collect(),
                ),
            ),
        ]),
        // The batch was queued but the writer exited (shutdown drained
        // past it): the write did not land in the final epoch.
        Err(_) => err_response(code::SHUTTING_DOWN, "batch dropped by shutdown drain"),
    }
}
