//! Workload specs: how `gedd` gets its Σ and initial graph.
//!
//! A spec is `family` or `family:key=value,key=value,...` — compact
//! enough for a CLI flag, deterministic via explicit seeds, and built
//! entirely from `ged-datagen` so the daemon's startup state is the
//! same as the test suites':
//!
//! * `empty` — no nodes, no rules: a blank validator to drive entirely
//!   over the wire (`gedctl apply`);
//! * `mixed:honest=30,plants=2,seed=11` — the social mixed-family
//!   workload (GED + GDC + GED∨ in one [`SigmaConstraint`] set) with
//!   `plants` violations planted per rule;
//! * `random:nodes=90,rules=2,seed=7` — the evolving-graph workload of
//!   the incremental suites: a random graph with a planted key
//!   constraint plus `rules` random GEDs.

use ged_datagen::random::{plant_key_violations, random_graph, random_sigma, RandomGraphConfig};
use ged_datagen::social::SocialConfig;
use ged_ext::SigmaConstraint;
use ged_graph::Graph;

/// Build the `(graph, Σ)` a spec describes, or explain why the spec is
/// unintelligible.
pub fn load(spec: &str) -> Result<(Graph, Vec<SigmaConstraint>), String> {
    let (family, params) = match spec.split_once(':') {
        Some((family, params)) => (family, params),
        None => (spec, ""),
    };
    let params = parse_params(params)?;
    let get = |key: &str, default: u64| -> Result<u64, String> {
        match params.iter().find(|(k, _)| k == key) {
            Some((_, v)) => v
                .parse::<u64>()
                .map_err(|_| format!("workload param {key}={v}: not an unsigned integer")),
            None => Ok(default),
        }
    };
    let known = |allowed: &[&str]| -> Result<(), String> {
        for (k, _) in &params {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown {family} workload param {k:?} (expected one of {allowed:?})"
                ));
            }
        }
        Ok(())
    };
    match family {
        "empty" => {
            known(&[])?;
            Ok((Graph::new(), Vec::new()))
        }
        "mixed" => {
            known(&["honest", "plants", "seed"])?;
            let cfg = SocialConfig {
                n_honest: get("honest", 30)? as usize,
                seed: get("seed", 11)?,
                ..Default::default()
            };
            let w = ged_datagen::mixed::social_mixed(&cfg, get("plants", 2)? as usize, cfg.seed);
            Ok((w.graph, w.sigma))
        }
        "random" => {
            known(&["nodes", "rules", "seed"])?;
            let n_nodes = get("nodes", 90)? as usize;
            let cfg = RandomGraphConfig {
                n_nodes,
                n_edges: 3 * n_nodes,
                seed: get("seed", 7)?,
                ..Default::default()
            };
            let mut g = random_graph(&cfg);
            let key = plant_key_violations(&mut g, "entity", n_nodes / 20 + 1);
            let mut sigma: Vec<SigmaConstraint> = vec![key.into()];
            sigma.extend(
                random_sigma(get("rules", 2)? as usize, 3, &cfg)
                    .into_iter()
                    .map(SigmaConstraint::from),
            );
            Ok((g, sigma))
        }
        other => Err(format!(
            "unknown workload family {other:?} (expected empty, mixed or random)"
        )),
    }
}

fn parse_params(params: &str) -> Result<Vec<(String, String)>, String> {
    if params.is_empty() {
        return Ok(Vec::new());
    }
    params
        .split(',')
        .map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("workload param {pair:?} is not key=value"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_empty() {
        let (g, sigma) = load("empty").unwrap();
        assert_eq!(g.node_count(), 0);
        assert!(sigma.is_empty());
    }

    #[test]
    fn mixed_and_random_build_and_are_deterministic() {
        let (g1, s1) = load("mixed:honest=10,plants=1,seed=3").unwrap();
        let (g2, s2) = load("mixed:honest=10,plants=1,seed=3").unwrap();
        assert!(g1.node_count() > 0);
        assert_eq!(s1.len(), 4, "the social mixed workload has four rules");
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(s1.len(), s2.len());

        let (g, sigma) = load("random:nodes=40,rules=2,seed=5").unwrap();
        assert!(g.node_count() >= 40);
        assert_eq!(sigma.len(), 3, "planted key + 2 random rules");
    }

    #[test]
    fn bad_specs_explain_themselves() {
        assert!(load("nope").unwrap_err().contains("unknown workload"));
        assert!(load("mixed:plants=x").unwrap_err().contains("plants=x"));
        assert!(load("mixed:warp=1").unwrap_err().contains("warp"));
        assert!(load("random:nodes").unwrap_err().contains("key=value"));
        assert!(load("empty:plants=1").unwrap_err().contains("plants"));
    }
}
