//! # ged-datagen — workloads and lower-bound constructions
//!
//! Synthetic substitutes for the paper's proprietary datasets (DESIGN.md
//! "Substitutions") and the executable hardness reductions:
//!
//! * [`rules`] — the GEDs of Example 3 (φ1–φ5, ψ1–ψ3);
//! * [`kb`] — knowledge base with the four planted inconsistency kinds of
//!   Example 1(1);
//! * [`social`] — fake-account cascades for φ5 (Example 1(2));
//! * [`music`] — album/artist duplicates resolvable only by the recursive
//!   keys ψ1–ψ3 (Example 1(3));
//! * [`random`] — random graphs / patterns / GED sets for scaling;
//! * [`gdc`] — GDC workloads (§7.1): age/price dense-order predicates over
//!   the social and kb graphs, with planted violations;
//! * [`disj`] — GED∨ workloads (§7.2): multi-disjunct domain and
//!   conditional rules over the same graphs, with planted violations;
//! * [`mixed`] — heterogeneous-Σ workloads: GED + GDC + GED∨ in one
//!   `Vec<AnyConstraint>`, with planted violations per family;
//! * [`coloring`] — 3-colorability reductions behind Theorems 3, 5, 6,
//!   cross-validated against a brute-force oracle.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod coloring;
pub mod disj;
pub mod gdc;
pub mod kb;
pub mod mixed;
pub mod music;
pub mod random;
pub mod redundant;
pub mod rules;
pub mod social;
