//! GED∨ workloads: multi-disjunct domain and conditional rules over the
//! social and knowledge-base generators, with a controlled number of
//! planted violations — the Section 7.2 constraint family as an engine
//! workload rather than just a reasoning fixture.
//!
//! A GED∨ is violated iff *every* disjunct of its conclusion fails, so
//! the planted errors here are values outside a finite domain (all
//! disjuncts fail at once) and flagged accounts escaping every permitted
//! escape hatch.

use crate::kb::KbConfig;
use crate::social::SocialConfig;
use ged_core::literal::Literal;
use ged_ext::DisjGed;
use ged_graph::{sym, Graph};
use ged_pattern::{parse_pattern, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A GED∨ workload: a decorated graph, its rule set, and the number of
/// violations planted by construction.
#[derive(Debug)]
pub struct DisjWorkload {
    /// The graph.
    pub graph: Graph,
    /// The GED∨ rule set.
    pub sigma: Vec<DisjGed>,
    /// Violating witnesses planted by construction.
    pub planted: usize,
}

/// The social-network GED∨ workload. Every account gets a `tier` drawn
/// from the three-valued domain `{free, pro, biz}`; `planted_bad_tier`
/// accounts get an out-of-domain tier (all three disjuncts fail). On top,
/// `planted_bots` extra confirmed-fake accounts are added that violate the
/// conditional rule "a fake account is free-tier or suspended"
/// (`account(x)(x.is_fake = 1 → x.tier = free ∨ x.suspended = 1)`).
pub fn social_disj(
    cfg: &SocialConfig,
    planted_bad_tier: usize,
    planted_bots: usize,
    seed: u64,
) -> DisjWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = crate::social::generate(cfg).graph;
    let accounts: Vec<_> = graph.nodes_with_label(sym("account")).to_vec();
    assert!(
        planted_bad_tier <= accounts.len(),
        "cannot plant more bad tiers than accounts"
    );
    let (tier, is_fake, suspended) = (sym("tier"), sym("is_fake"), sym("suspended"));
    const DOMAIN: [&str; 3] = ["free", "pro", "biz"];
    for (i, &a) in accounts.iter().enumerate() {
        if i < planted_bad_tier {
            graph.set_attr(a, tier, "gold");
        } else {
            graph.set_attr(a, tier, DOMAIN[rng.random_range(0..DOMAIN.len())]);
        }
        // Keep the conditional rule clean on generator accounts: whoever is
        // flagged fake (the cascade seed) is suspended.
        if graph.attr(a, is_fake).is_some_and(|v| *v == 1.into()) {
            graph.set_attr(a, suspended, 1);
        }
    }
    // The planted bots: confirmed fake, paid tier, not suspended.
    for _ in 0..planted_bots {
        let b = graph.add_node(sym("account"));
        graph.set_attr(b, is_fake, 1);
        graph.set_attr(b, tier, "pro");
    }
    let q = parse_pattern("account(x)").unwrap();
    let x = Var(0);
    let sigma = vec![
        DisjGed::new(
            "tier-domain",
            q.clone(),
            vec![],
            DOMAIN
                .iter()
                .map(|&d| Literal::constant(x, tier, d))
                .collect(),
        ),
        DisjGed::new(
            "fake⇒free∨suspended",
            q,
            vec![Literal::constant(x, is_fake, 1)],
            vec![
                Literal::constant(x, tier, "free"),
                Literal::constant(x, suspended, 1),
            ],
        ),
    ];
    DisjWorkload {
        graph,
        sigma,
        planted: planted_bad_tier + planted_bots,
    }
}

/// The knowledge-base GED∨ workload: every product gets a `visibility`
/// drawn from `{0, 1, 2}` (hidden / listed / featured);
/// `planted_bad_visibility` products get an out-of-domain value, failing
/// every disjunct of the domain rule.
pub fn kb_disj(cfg: &KbConfig, planted_bad_visibility: usize, seed: u64) -> DisjWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = crate::kb::generate(cfg).graph;
    let products: Vec<_> = graph.nodes_with_label(sym("product")).to_vec();
    assert!(
        planted_bad_visibility <= products.len(),
        "cannot plant more bad visibilities than products"
    );
    let vis = sym("visibility");
    for (i, &p) in products.iter().enumerate() {
        let v: i64 = if i < planted_bad_visibility {
            rng.random_range(5..9)
        } else {
            rng.random_range(0..3)
        };
        graph.set_attr(p, vis, v);
    }
    let q = parse_pattern("product(x)").unwrap();
    let sigma = vec![DisjGed::new(
        "visibility∈{0,1,2}",
        q,
        vec![],
        (0..3).map(|v| Literal::constant(Var(0), vis, v)).collect(),
    )];
    DisjWorkload {
        graph,
        sigma,
        planted: planted_bad_visibility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_ext::{disj_satisfies_all, disj_violations};

    #[test]
    fn social_workload_plants_tier_and_bot_violations() {
        let w = social_disj(&SocialConfig::default(), 3, 2, 5);
        assert_eq!(w.planted, 5);
        assert_eq!(disj_violations(&w.graph, &w.sigma[0], None).len(), 3);
        assert_eq!(disj_violations(&w.graph, &w.sigma[1], None).len(), 2);
        assert!(!disj_satisfies_all(&w.graph, &w.sigma));
    }

    #[test]
    fn social_workload_with_no_plants_is_clean() {
        let w = social_disj(&SocialConfig::default(), 0, 0, 5);
        assert!(disj_satisfies_all(&w.graph, &w.sigma));
    }

    #[test]
    fn kb_workload_plants_exactly_the_bad_visibilities() {
        let w = kb_disj(&KbConfig::default(), 4, 8);
        assert_eq!(disj_violations(&w.graph, &w.sigma[0], None).len(), 4);
        let clean = kb_disj(&KbConfig::default(), 0, 8);
        assert!(disj_satisfies_all(&clean.graph, &clean.sigma));
    }
}
