//! The redundancy-planted workload behind EXP-ANALYZE: a Σ whose rules
//! are correct but *sloppy* — an implied rule, a verbatim duplicate, two
//! rules that can never fire or never violate, and a disjunctive rule
//! with a repeated disjunct — over a follow-ring graph with a controlled
//! number of planted violations against the live rules.
//!
//! The static analyzer (`ged-analysis`) must flag every planted
//! diagnostic and prove the four redundant rules prunable; since the
//! redundant rules share the expensive edge-bound pattern with the live
//! ones, pruning them roughly halves the matcher work of seeding and the
//! delta path — the speedup EXP-ANALYZE measures.

use ged_core::constraint::AnyConstraint;
use ged_core::ged::Ged;
use ged_core::literal::Literal;
use ged_ext::DisjGed;
use ged_graph::{sym, Graph};
use ged_pattern::{parse_pattern, Var};

/// The redundancy-planted workload: graph, sloppy Σ, and what the
/// analyzer is expected to find.
#[derive(Debug)]
pub struct RedundantWorkload {
    /// A `user` follow-ring with attribute decorations.
    pub graph: Graph,
    /// Seven rules: three live (indices 0–2), four prunable (3–6).
    pub sigma: Vec<AnyConstraint>,
    /// Rules that survive pruning (`3`).
    pub live: usize,
    /// Rules the analyzer proves safe to drop (`4`).
    pub prunable: usize,
    /// Violations planted against the live rule `watch:new-follower`
    /// (the implied rule and the duplicate mirror them until pruned).
    pub planted: usize,
}

/// Build the workload over a ring of `nodes` users (`i -[follows]-> i+1`,
/// wrapping) with `planted` violations.
///
/// The Σ (all patterns share names so the analyzer's indices are easy to
/// follow in reports):
///
/// | # | rule | status |
/// |---|------|--------|
/// | 0 | `watch:new-follower` — `Q2(x.status=a → y.watch=1)` | live |
/// | 1 | `level:watched` — `Q2(y.watch=1 → y.level=2)` | live |
/// | 2 | `tier:spam` — `Q1(x.kind=spam → x.tier=free ∨ free ∨ locked)` | live, **duplicate disjunct** |
/// | 3 | `watch:transitive` — `Q2(x.status=a → y.level=2)` | **implied** by 0+1 |
/// | 4 | `watch:new-follower-copy` — verbatim copy of 0 | **duplicate rule** |
/// | 5 | `bot-and-human` — `Q2(x.kind=bot ∧ x.kind=human → y.level=9)` | **contradictory premises** |
/// | 6 | `status:idempotent` — `Q2(x.status=a → x.status=a)` | **entailed conclusion** (dead) |
///
/// where `Q2 = user(x) -[follows]-> user(y)` and `Q1 = user(x)`. Node
/// decoration: every `i ≡ 0 (mod 3)` gets `status = "a"` with its
/// successor fully satisfying rules 0/1/3; the first `planted` nodes with
/// `i ≡ 1 (mod 3)` get `status = "a"` with a bare successor — each is one
/// violation of rule 0 (and, until pruning, of rules 3 and 4); `i ≡ 2
/// (mod 3)` nodes are spam with an in-domain tier, so rule 2 matches but
/// never fires a violation.
pub fn redundant(nodes: usize, planted: usize) -> RedundantWorkload {
    assert!(nodes >= 6, "need at least 6 nodes");
    let eligible = (nodes - 1).div_ceil(3);
    assert!(
        planted <= eligible.saturating_sub(1),
        "cannot plant {planted} violations over {nodes} nodes"
    );
    let user = sym("user");
    let follows = sym("follows");
    let (status, watch, level) = (sym("status"), sym("watch"), sym("level"));
    let (kind, tier) = (sym("kind"), sym("tier"));

    let mut graph = Graph::new();
    let ids: Vec<_> = (0..nodes).map(|_| graph.add_node(user)).collect();
    for i in 0..nodes {
        graph.add_edge(ids[i], follows, ids[(i + 1) % nodes]);
    }
    let mut left = planted;
    for i in 0..nodes - 1 {
        match i % 3 {
            0 => {
                // Satisfied slice: status=a with a fully decorated
                // successor.
                graph.set_attr(ids[i], status, "a");
                graph.set_attr(ids[i + 1], watch, 1);
                graph.set_attr(ids[i + 1], level, 2);
            }
            1 if left > 0 => {
                // Planted slice: status=a with a bare successor — one
                // rule-0 violation each.
                graph.set_attr(ids[i], status, "a");
                left -= 1;
            }
            2 => {
                // Spam slice: rule 2 matches, first disjunct satisfies.
                graph.set_attr(ids[i], kind, "spam");
                graph.set_attr(ids[i], tier, "free");
            }
            _ => {}
        }
    }
    assert_eq!(left, 0, "ran out of plant slots");

    let q1 = parse_pattern("user(x)").unwrap();
    let q2 = || parse_pattern("user(x) -[follows]-> user(y)").unwrap();
    let (x, y) = (Var(0), Var(1));
    let new_follower = Ged::new(
        "watch:new-follower",
        q2(),
        vec![Literal::constant(x, status, "a")],
        vec![Literal::constant(y, watch, 1)],
    );
    let sigma: Vec<AnyConstraint> = vec![
        new_follower.clone().into(),
        Ged::new(
            "level:watched",
            q2(),
            vec![Literal::constant(y, watch, 1)],
            vec![Literal::constant(y, level, 2)],
        )
        .into(),
        DisjGed::new(
            "tier:spam",
            q1,
            vec![Literal::constant(x, kind, "spam")],
            vec![
                Literal::constant(x, tier, "free"),
                Literal::constant(x, tier, "free"),
                Literal::constant(x, tier, "locked"),
            ],
        )
        .into(),
        Ged::new(
            "watch:transitive",
            q2(),
            vec![Literal::constant(x, status, "a")],
            vec![Literal::constant(y, level, 2)],
        )
        .into(),
        Ged::new(
            "watch:new-follower-copy",
            new_follower.pattern.clone(),
            new_follower.premises.clone(),
            new_follower.conclusions.clone(),
        )
        .into(),
        Ged::new(
            "bot-and-human",
            q2(),
            vec![
                Literal::constant(x, kind, "bot"),
                Literal::constant(x, kind, "human"),
            ],
            vec![Literal::constant(y, level, 9)],
        )
        .into(),
        Ged::new(
            "status:idempotent",
            q2(),
            vec![Literal::constant(x, status, "a")],
            vec![Literal::constant(x, status, "a")],
        )
        .into(),
    ];
    RedundantWorkload {
        graph,
        sigma,
        live: 3,
        prunable: 4,
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_core::reason::validate;

    #[test]
    fn planted_counts_are_exact() {
        let w = redundant(120, 10);
        assert_eq!(w.sigma.len(), w.live + w.prunable);
        let report = validate(&w.graph, &w.sigma, None);
        let count = |name: &str| {
            report
                .per_ged
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.violation_count)
                .unwrap()
        };
        // The live rule, the implied rule, and the duplicate each see the
        // planted matches; everything else is quiet.
        assert_eq!(count("watch:new-follower"), 10);
        assert_eq!(count("watch:transitive"), 10);
        assert_eq!(count("watch:new-follower-copy"), 10);
        assert_eq!(count("level:watched"), 0);
        assert_eq!(count("tier:spam"), 0);
        assert_eq!(count("bot-and-human"), 0);
        assert_eq!(count("status:idempotent"), 0);
    }

    #[test]
    fn zero_plants_is_satisfied() {
        let w = redundant(60, 0);
        let report = validate(&w.graph, &w.sigma, None);
        assert!(report.satisfied());
    }
}
