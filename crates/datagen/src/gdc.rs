//! GDC workloads: dense-order (age/price) predicates over the social and
//! knowledge-base generators, with a controlled number of planted
//! violations — the Section 7.1 constraint family as an engine workload
//! rather than just a reasoning fixture.
//!
//! Both workloads decorate an existing generator's graph with totally
//! ordered attributes and pair it with denial-style GDCs whose violation
//! count is known by construction, so the incremental≡full harness and
//! the EXP-INC experiments can drive GDC sigmas with ground truth.

use crate::kb::KbConfig;
use crate::social::SocialConfig;
use ged_ext::{Gdc, GdcLiteral, Pred};
use ged_graph::{sym, Graph};
use ged_pattern::{parse_pattern, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A GDC workload: a decorated graph, its rule set, and the number of
/// violations planted by construction.
#[derive(Debug)]
pub struct GdcWorkload {
    /// The graph.
    pub graph: Graph,
    /// The GDC rule set.
    pub sigma: Vec<Gdc>,
    /// Violating witnesses planted by construction.
    pub planted: usize,
}

/// The social-network GDC workload: every account gets an `age`
/// attribute; `planted_underage` of them get an age below 13. Σ is the
/// pair of dense-order range denials
/// `account(x)(x.age < 13 → false)` and `account(x)(x.age > 120 → false)`.
pub fn social_gdcs(cfg: &SocialConfig, planted_underage: usize, seed: u64) -> GdcWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = crate::social::generate(cfg).graph;
    let accounts: Vec<_> = graph.nodes_with_label(sym("account")).to_vec();
    assert!(
        planted_underage <= accounts.len(),
        "cannot plant more underage accounts than accounts"
    );
    let age = sym("age");
    for (i, &a) in accounts.iter().enumerate() {
        let v: i64 = if i < planted_underage {
            rng.random_range(6..13)
        } else {
            rng.random_range(18..71)
        };
        graph.set_attr(a, age, v);
    }
    let q = parse_pattern("account(x)").unwrap();
    let sigma = vec![
        Gdc::forbidding(
            "age≥13",
            q.clone(),
            vec![GdcLiteral::constant(Var(0), age, Pred::Lt, 13)],
        ),
        Gdc::forbidding(
            "age≤120",
            q,
            vec![GdcLiteral::constant(Var(0), age, Pred::Gt, 120)],
        ),
    ];
    GdcWorkload {
        graph,
        sigma,
        planted: planted_underage,
    }
}

/// The knowledge-base GDC workload: every product gets `price` and
/// `discount` attributes with `0 ≤ discount ≤ price`;
/// `planted_overdiscount` products get a discount *above* their price. Σ
/// is a constant range denial `product(x)(x.price < 0 → false)` and the
/// variable-predicate denial `product(x)(x.discount > x.price → false)` —
/// the dense-order comparison between two attribute slots that plain GEDs
/// cannot express.
pub fn kb_gdcs(cfg: &KbConfig, planted_overdiscount: usize, seed: u64) -> GdcWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = crate::kb::generate(cfg).graph;
    let products: Vec<_> = graph.nodes_with_label(sym("product")).to_vec();
    assert!(
        planted_overdiscount <= products.len(),
        "cannot plant more over-discounted products than products"
    );
    let (price, discount) = (sym("price"), sym("discount"));
    for (i, &p) in products.iter().enumerate() {
        let cost: i64 = rng.random_range(10..101);
        graph.set_attr(p, price, cost);
        let cut: i64 = if i < planted_overdiscount {
            cost + rng.random_range(1..21)
        } else {
            rng.random_range(0..cost + 1)
        };
        graph.set_attr(p, discount, cut);
    }
    let q = parse_pattern("product(x)").unwrap();
    let sigma = vec![
        Gdc::forbidding(
            "price≥0",
            q.clone(),
            vec![GdcLiteral::constant(Var(0), price, Pred::Lt, 0)],
        ),
        Gdc::forbidding(
            "discount≤price",
            q,
            vec![GdcLiteral::vars(Var(0), discount, Pred::Gt, Var(0), price)],
        ),
    ];
    GdcWorkload {
        graph,
        sigma,
        planted: planted_overdiscount,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_ext::{gdc_satisfies_all, gdc_violations};

    #[test]
    fn social_workload_plants_exactly_the_underage_accounts() {
        let w = social_gdcs(&SocialConfig::default(), 4, 3);
        let total: usize = w
            .sigma
            .iter()
            .map(|g| gdc_violations(&w.graph, g, None).len())
            .sum();
        assert_eq!(total, w.planted);
        assert_eq!(w.planted, 4);
        assert!(!gdc_satisfies_all(&w.graph, &w.sigma));
    }

    #[test]
    fn social_workload_with_no_plants_is_clean() {
        let w = social_gdcs(&SocialConfig::default(), 0, 3);
        assert!(gdc_satisfies_all(&w.graph, &w.sigma));
    }

    #[test]
    fn kb_workload_plants_exactly_the_overdiscounted_products() {
        let w = kb_gdcs(&KbConfig::default(), 5, 9);
        let total: usize = w
            .sigma
            .iter()
            .map(|g| gdc_violations(&w.graph, g, None).len())
            .sum();
        assert_eq!(total, 5);
        // The violations are all on the variable-predicate rule.
        assert!(gdc_violations(&w.graph, &w.sigma[0], None).is_empty());
        assert_eq!(gdc_violations(&w.graph, &w.sigma[1], None).len(), 5);
    }
}
