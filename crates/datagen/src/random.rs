//! Random labelled graphs, patterns and GED sets — the scaling workloads
//! of EXP-T1-VAL and EXP-T1-FRONTIER and the Church–Rosser property
//! tests.

use ged_core::ged::Ged;
use ged_core::literal::Literal;
use ged_graph::{sym, Graph, NodeId};
use ged_pattern::{Pattern, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random graph generation.
#[derive(Debug, Clone)]
pub struct RandomGraphConfig {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Number of (attempted) edges.
    pub n_edges: usize,
    /// Node label alphabet size.
    pub n_labels: usize,
    /// Edge label alphabet size.
    pub n_edge_labels: usize,
    /// Attributes per node (each `attr_i` with a small integer value).
    pub n_attrs: usize,
    /// Attribute value range (small ⇒ many coincidences ⇒ many premise
    /// hits).
    pub value_range: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            n_nodes: 100,
            n_edges: 300,
            n_labels: 4,
            n_edge_labels: 3,
            n_attrs: 2,
            value_range: 8,
            seed: 17,
        }
    }
}

/// Generate a random graph per `cfg`.
pub fn random_graph(cfg: &RandomGraphConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let labels: Vec<_> = (0..cfg.n_labels).map(|i| sym(&format!("L{i}"))).collect();
    let elabels: Vec<_> = (0..cfg.n_edge_labels)
        .map(|i| sym(&format!("e{i}")))
        .collect();
    let attrs: Vec<_> = (0..cfg.n_attrs).map(|i| sym(&format!("attr{i}"))).collect();
    for _ in 0..cfg.n_nodes {
        let n = g.add_node(labels[rng.random_range(0..labels.len())]);
        for a in &attrs {
            g.set_attr(n, *a, rng.random_range(0..cfg.value_range));
        }
    }
    for _ in 0..cfg.n_edges {
        let u = NodeId(rng.random_range(0..cfg.n_nodes) as u32);
        let v = NodeId(rng.random_range(0..cfg.n_nodes) as u32);
        g.add_edge(u, elabels[rng.random_range(0..elabels.len())], v);
    }
    g
}

/// Generate a random *connected* pattern of `size` variables over the same
/// alphabets as [`random_graph`] (spanning tree + one extra edge).
pub fn random_pattern(size: usize, cfg: &RandomGraphConfig, seed: u64) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = Pattern::new();
    let vars: Vec<Var> = (0..size)
        .map(|i| {
            let l = format!("L{}", rng.random_range(0..cfg.n_labels));
            q.var(&format!("v{i}"), &l)
        })
        .collect();
    for i in 1..size {
        let parent = rng.random_range(0..i);
        let el = format!("e{}", rng.random_range(0..cfg.n_edge_labels));
        if rng.random_bool(0.5) {
            q.edge(vars[parent], &el, vars[i]);
        } else {
            q.edge(vars[i], &el, vars[parent]);
        }
    }
    if size >= 2 {
        let u = rng.random_range(0..size);
        let v = rng.random_range(0..size);
        if u != v {
            let el = format!("e{}", rng.random_range(0..cfg.n_edge_labels));
            q.edge(vars[u], &el, vars[v]);
        }
    }
    q
}

/// Generate a random GED over a random pattern: a variable-literal premise
/// and either a variable-literal or constant-literal conclusion.
pub fn random_ged(name: &str, pattern_size: usize, cfg: &RandomGraphConfig, seed: u64) -> Ged {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let q = random_pattern(pattern_size, cfg, seed);
    let nv = q.var_count() as u32;
    let a0 = sym("attr0");
    let a1 = sym(if cfg.n_attrs > 1 { "attr1" } else { "attr0" });
    let vx = Var(rng.random_range(0..nv));
    let vy = Var(rng.random_range(0..nv));
    let premises = vec![Literal::vars(vx, a0, vy, a0)];
    let conclusions = if rng.random_bool(0.5) {
        vec![Literal::vars(vx, a1, vy, a1)]
    } else {
        vec![Literal::constant(
            vx,
            a1,
            rng.random_range(0..cfg.value_range),
        )]
    };
    Ged::new(name, q, premises, conclusions)
}

/// A random Σ of `count` GEDs with the given pattern size.
pub fn random_sigma(count: usize, pattern_size: usize, cfg: &RandomGraphConfig) -> Vec<Ged> {
    (0..count)
        .map(|i| {
            random_ged(
                &format!("r{i}"),
                pattern_size,
                cfg,
                cfg.seed + 1000 + i as u64,
            )
        })
        .collect()
}

/// Plant `count` violations of a simple key GED (`label` nodes with equal
/// `key` attribute must be the same node) into `g`, returning the GED.
/// Every planted pair is a distinct violation witness.
pub fn plant_key_violations(g: &mut Graph, label: &str, count: usize) -> Ged {
    let l = sym(label);
    let key = sym("key");
    for i in 0..count {
        let a = g.add_node(l);
        let b = g.add_node(l);
        g.set_attr(a, key, format!("dup{i}"));
        g.set_attr(b, key, format!("dup{i}"));
    }
    let mut q = Pattern::new();
    let x = q.var("x", label);
    let y = q.var("y", label);
    Ged::new(
        format!("key:{label}"),
        q,
        vec![Literal::vars(x, key, y, key)],
        vec![Literal::id(x, y)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_core::chase::{chase, chase_random};
    use ged_core::reason::validate;
    use ged_core::satisfy::violations;

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        let cfg = RandomGraphConfig::default();
        let a = random_graph(&cfg);
        let b = random_graph(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = random_graph(&RandomGraphConfig { seed: 18, ..cfg });
        // overwhelmingly likely to differ
        assert!(a.edge_count() != c.edge_count() || a.edges().zip(c.edges()).any(|(x, y)| x != y));
    }

    #[test]
    fn random_patterns_are_connected_and_sized() {
        let cfg = RandomGraphConfig::default();
        for size in 2..6 {
            for seed in 0..5 {
                let q = random_pattern(size, &cfg, seed);
                assert_eq!(q.var_count(), size);
                assert!(q.is_connected());
            }
        }
    }

    #[test]
    fn planted_key_violations_are_found_exactly() {
        let cfg = RandomGraphConfig {
            n_nodes: 40,
            n_edges: 60,
            ..Default::default()
        };
        let mut g = random_graph(&cfg);
        let ged = plant_key_violations(&mut g, "dupe", 5);
        let vs = violations(&g, &ged, None);
        // Each planted pair gives two symmetric violating matches.
        assert_eq!(vs.len(), 10);
    }

    #[test]
    fn random_sigma_validates_without_panicking() {
        let cfg = RandomGraphConfig {
            n_nodes: 30,
            n_edges: 60,
            ..Default::default()
        };
        let g = random_graph(&cfg);
        let sigma = random_sigma(4, 3, &cfg);
        let report = validate(&g, &sigma, Some(5));
        assert_eq!(report.per_ged.len(), 4);
    }

    /// Church–Rosser on random inputs: deterministic and randomised chase
    /// schedules agree (Theorem 1, exercised beyond the paper's Example 4).
    #[test]
    fn church_rosser_on_random_inputs() {
        for seed in 0..5u64 {
            let cfg = RandomGraphConfig {
                n_nodes: 8,
                n_edges: 12,
                n_labels: 2,
                n_attrs: 1,
                value_range: 2,
                seed,
                ..Default::default()
            };
            let g = random_graph(&cfg);
            let sigma = random_sigma(2, 2, &cfg);
            let reference = chase(&g, &sigma).comparison_key();
            for chase_seed in 1..4 {
                assert_eq!(
                    chase_random(&g, &sigma, chase_seed).comparison_key(),
                    reference,
                    "graph seed {seed}, chase seed {chase_seed}"
                );
            }
        }
    }
}
