//! Mixed-family Σ workloads: one heterogeneous rule set holding plain
//! GEDs, a dense-order GDC, and a disjunctive GED∨ — carried by the
//! closed [`SigmaConstraint`] enum so a single
//! `IncrementalValidator<SigmaConstraint>` (or any generic engine) serves
//! all of them at once with statically dispatched `check` calls, with a
//! controlled number of planted violations per family. Convert members
//! `.into()` [`AnyConstraint`](ged_core::constraint::AnyConstraint) when
//! an open rule set is needed.
//!
//! Every rule's pattern is O(|V| + |E|) to enumerate (single-variable or
//! edge-bound), so the workload scales to the 10k-node acceptance runs
//! that revalidate from scratch at every step.

use crate::social::SocialConfig;
use ged_core::ged::Ged;
use ged_core::literal::Literal;
use ged_ext::{DisjGed, Gdc, GdcLiteral, Pred, SigmaConstraint};
use ged_graph::{sym, Graph};
use ged_pattern::{parse_pattern, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mixed-family workload: a decorated graph, its heterogeneous rule
/// set, and the number of violations planted by construction.
#[derive(Debug)]
pub struct MixedWorkload {
    /// The graph.
    pub graph: Graph,
    /// The heterogeneous rule set (GED + GDC + GED∨, one `Vec` of the
    /// closed enum — statically dispatched).
    pub sigma: Vec<SigmaConstraint>,
    /// Violating witnesses planted by construction (`plants` per rule,
    /// four rules: `4 * plants` total).
    pub planted: usize,
}

/// The social-network mixed workload. Four rules, one
/// `Vec<SigmaConstraint>`:
///
/// * **GED** `verified⇒real`: `account(x)(x.verified = 1 → x.is_fake = 0)`
///   — conjunctive conclusion, [`Conclusions`] violation kind;
/// * **GED** `no-self-follow`:
///   `account(x) -[follow]-> account(y)(x.id = y.id → false)` — an
///   edge-bound forbidding rule tripped only by `follow` self-loops;
/// * **GDC** `age≥13`: `account(x)(x.age < 13 → false)` — dense-order
///   predicate, [`Predicates`] kind;
/// * **GED∨** `tier-domain`: `account(x)(∅ → x.tier = free ∨ pro ∨ biz)`
///   — finite domain, [`Disjunction`] kind.
///
/// `plants` violations are planted per rule on *disjoint* account slices
/// (`planted = 4 * plants`): verified bots, `follow` self-loops, underage
/// ages, and an out-of-domain `gold` tier. All other accounts get clean
/// values for every decorated attribute.
///
/// [`Conclusions`]: ged_core::constraint::ViolationKind::Conclusions
/// [`Predicates`]: ged_core::constraint::ViolationKind::Predicates
/// [`Disjunction`]: ged_core::constraint::ViolationKind::Disjunction
pub fn social_mixed(cfg: &SocialConfig, plants: usize, seed: u64) -> MixedWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = crate::social::generate(cfg).graph;
    let accounts: Vec<_> = graph.nodes_with_label(sym("account")).to_vec();
    assert!(
        4 * plants <= accounts.len(),
        "cannot plant {} violations across {} accounts",
        4 * plants,
        accounts.len()
    );
    let (verified, is_fake) = (sym("verified"), sym("is_fake"));
    let (age, tier, follow) = (sym("age"), sym("tier"), sym("follow"));
    const DOMAIN: [&str; 3] = ["free", "pro", "biz"];
    for (i, &a) in accounts.iter().enumerate() {
        // Slice 0: verified yet fake — violates the conjunctive GED.
        if i < plants {
            graph.set_attr(a, verified, 1);
            graph.set_attr(a, is_fake, 1);
        } else {
            graph.set_attr(a, verified, 0);
        }
        // Slice 1: a `follow` self-loop — violates the edge-bound GED.
        if (plants..2 * plants).contains(&i) {
            graph.add_edge(a, follow, a);
        }
        // Slice 2: underage — violates the dense-order GDC.
        let years: i64 = if (2 * plants..3 * plants).contains(&i) {
            rng.random_range(6..13)
        } else {
            rng.random_range(18..71)
        };
        graph.set_attr(a, age, years);
        // Slice 3: out-of-domain tier — fails every GED∨ disjunct.
        if (3 * plants..4 * plants).contains(&i) {
            graph.set_attr(a, tier, "gold");
        } else {
            graph.set_attr(a, tier, DOMAIN[rng.random_range(0..DOMAIN.len())]);
        }
    }
    let node = parse_pattern("account(x)").unwrap();
    let edge = parse_pattern("account(x) -[follow]-> account(y)").unwrap();
    let x = Var(0);
    let sigma: Vec<SigmaConstraint> = vec![
        Ged::new(
            "verified⇒real",
            node.clone(),
            vec![Literal::constant(x, verified, 1)],
            vec![Literal::constant(x, is_fake, 0)],
        )
        .into(),
        Ged::forbidding("no-self-follow", edge, vec![Literal::id(Var(0), Var(1))]).into(),
        Gdc::forbidding(
            "age≥13",
            node.clone(),
            vec![GdcLiteral::constant(x, age, Pred::Lt, 13)],
        )
        .into(),
        DisjGed::new(
            "tier-domain",
            node,
            vec![],
            DOMAIN
                .iter()
                .map(|&d| Literal::constant(x, tier, d))
                .collect(),
        )
        .into(),
    ];
    MixedWorkload {
        graph,
        sigma,
        planted: 4 * plants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_core::constraint::ViolationKind;

    #[test]
    fn mixed_workload_plants_exactly_per_family() {
        let w = social_mixed(&SocialConfig::default(), 3, 11);
        assert_eq!(w.planted, 12);
        let report = ged_core::reason::validate(&w.graph, &w.sigma, None);
        assert_eq!(report.total_violations(), w.planted);
        for r in &report.per_ged {
            assert_eq!(r.violation_count, 3, "{}: 3 plants per rule", r.name);
        }
        // Each family reports its native violation kind.
        let kind_of = |name: &str| {
            report
                .violations
                .iter()
                .find(|v| v.ged_name == name)
                .map(|v| v.kind.clone())
                .unwrap()
        };
        assert!(matches!(
            kind_of("verified⇒real"),
            ViolationKind::Conclusions(_)
        ));
        assert!(matches!(
            kind_of("no-self-follow"),
            ViolationKind::Conclusions(_)
        ));
        assert!(matches!(kind_of("age≥13"), ViolationKind::Predicates(_)));
        assert!(matches!(kind_of("tier-domain"), ViolationKind::Disjunction));
    }

    #[test]
    fn mixed_workload_with_no_plants_is_clean() {
        let w = social_mixed(&SocialConfig::default(), 0, 11);
        let report = ged_core::reason::validate(&w.graph, &w.sigma, None);
        assert!(report.satisfied());
    }
}
