//! Album/artist generator (substitute for the music knowledge base of
//! Example 1(3); see DESIGN.md "Substitutions").
//!
//! Generates albums linked to their primary artists (`album -by-> artist`)
//! and plants duplicate pairs that only the *recursive* keys ψ1/ψ3 can
//! resolve: two album nodes share a title, their artists share a name, and
//! the duplication can be resolved only by the ψ1 ⇄ ψ3 fixpoint seeded by
//! a ψ2 match (title + release year). Running the chase with {ψ1, ψ2, ψ3}
//! merges each duplicate cluster into one entity — the entity-resolution
//! experiment EXP-EX1-3.

use ged_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct MusicConfig {
    /// Distinct (artist, album) clean pairs.
    pub n_clean: usize,
    /// Duplicate clusters to plant (each: 2 album nodes + 2 artist nodes
    /// that are really 1 + 1).
    pub n_dupes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MusicConfig {
    fn default() -> Self {
        MusicConfig {
            n_clean: 25,
            n_dupes: 5,
            seed: 3,
        }
    }
}

/// A generated music KB with ground truth duplicate clusters.
#[derive(Debug)]
pub struct MusicInstance {
    /// The graph.
    pub graph: Graph,
    /// For each planted cluster, the node names of the two album copies
    /// and the two artist copies: `(album_a, album_b, artist_a, artist_b)`.
    pub dupes: Vec<(String, String, String, String)>,
}

/// Generate per `cfg`.
pub fn generate(cfg: &MusicConfig) -> MusicInstance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();
    // Clean world: unique titles/names (the "Bleach" caveat of Example 1
    // is honoured by making clean titles distinct from dupe titles).
    for i in 0..cfg.n_clean {
        let album = format!("album_{i}");
        let artist = format!("artist_{i}");
        b.node(&album, "album");
        b.node(&artist, "artist");
        b.edge(&album, "by", &artist);
        b.attr(&album, "title", format!("Title {i}"));
        b.attr(&album, "release", 1960 + (rng.random_range(0..60)));
        b.attr(&artist, "name", format!("Artist {i}"));
    }
    // Planted duplicates: two copies of the same (album, artist) entity
    // extracted twice. Copies share title/release/name but are distinct
    // nodes; only the keys can merge them.
    let mut dupes = Vec::new();
    for i in 0..cfg.n_dupes {
        let (aa, ab) = (format!("dupe_album_{i}a"), format!("dupe_album_{i}b"));
        let (ra, rb) = (format!("dupe_artist_{i}a"), format!("dupe_artist_{i}b"));
        for (album, artist) in [(&aa, &ra), (&ab, &rb)] {
            b.node(album, "album");
            b.node(artist, "artist");
            b.edge(album, "by", artist);
            b.attr(album, "title", format!("Dupe Title {i}"));
            b.attr(album, "release", 1990 + i as i64);
            b.attr(artist, "name", format!("Dupe Artist {i}"));
        }
        dupes.push((aa, ab, ra, rb));
    }
    MusicInstance {
        graph: b.build(),
        dupes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{music_keys, psi1, psi3};
    use ged_core::chase::{chase, ChaseResult};
    use ged_core::satisfy::satisfies_all;

    #[test]
    fn generator_plants_resolvable_duplicates() {
        let cfg = MusicConfig::default();
        let inst = generate(&cfg);
        assert_eq!(inst.dupes.len(), cfg.n_dupes);
        // Duplicates violate the keys before resolution.
        assert!(!satisfies_all(&inst.graph, &music_keys()));
    }

    #[test]
    fn chase_resolves_every_planted_cluster() {
        let cfg = MusicConfig {
            n_clean: 10,
            n_dupes: 3,
            seed: 5,
        };
        let inst = generate(&cfg);
        let (g, names) = {
            // rebuild with names for ground-truth checking
            let i2 = generate(&cfg);
            let mut b = GraphBuilder::new();
            let _ = &i2;
            // regenerate via builder to get the name map
            (inst.graph.clone(), regenerate_names(&cfg, &mut b))
        };
        let result = chase(&g, &music_keys());
        let ChaseResult::Consistent { eq, coercion, .. } = result else {
            panic!("entity resolution chase must be valid");
        };
        for (aa, ab, ra, rb) in &inst.dupes {
            assert!(
                eq.node_eq(names[aa], names[ab]),
                "albums {aa} and {ab} merge"
            );
            assert!(
                eq.node_eq(names[ra], names[rb]),
                "artists {ra} and {rb} merge (recursive key ψ3)"
            );
        }
        // Each cluster shrinks the graph by 2 nodes.
        assert_eq!(
            coercion.graph.node_count(),
            g.node_count() - 2 * inst.dupes.len()
        );
        // The resolved graph satisfies the keys.
        assert!(satisfies_all(&coercion.graph, &music_keys()));
    }

    /// Rebuild the generator's name→id map (the generator is
    /// deterministic, so names map to the same ids).
    fn regenerate_names(
        cfg: &MusicConfig,
        b: &mut GraphBuilder,
    ) -> std::collections::HashMap<String, ged_graph::NodeId> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for i in 0..cfg.n_clean {
            let album = format!("album_{i}");
            let artist = format!("artist_{i}");
            b.node(&album, "album");
            b.node(&artist, "artist");
            b.edge(&album, "by", &artist);
            b.attr(&album, "title", format!("Title {i}"));
            b.attr(&album, "release", 1960 + (rng.random_range(0..60)));
            b.attr(&artist, "name", format!("Artist {i}"));
        }
        let mut names = std::collections::HashMap::new();
        for i in 0..cfg.n_dupes {
            let (aa, ab) = (format!("dupe_album_{i}a"), format!("dupe_album_{i}b"));
            let (ra, rb) = (format!("dupe_artist_{i}a"), format!("dupe_artist_{i}b"));
            for (album, artist) in [(&aa, &ra), (&ab, &rb)] {
                b.node(album, "album");
                b.node(artist, "artist");
                b.edge(album, "by", artist);
                b.attr(album, "title", format!("Dupe Title {i}"));
                b.attr(album, "release", 1990 + i as i64);
                b.attr(artist, "name", format!("Dupe Artist {i}"));
            }
            names.insert(aa.clone(), b.id(&aa));
            names.insert(ab.clone(), b.id(&ab));
            names.insert(ra.clone(), b.id(&ra));
            names.insert(rb.clone(), b.id(&rb));
        }
        names
    }

    #[test]
    fn clean_world_needs_no_merging() {
        let cfg = MusicConfig {
            n_clean: 8,
            n_dupes: 0,
            seed: 1,
        };
        let inst = generate(&cfg);
        assert!(satisfies_all(&inst.graph, &music_keys()));
        let ChaseResult::Consistent {
            coercion, stats, ..
        } = chase(&inst.graph, &music_keys())
        else {
            panic!()
        };
        assert_eq!(coercion.graph.node_count(), inst.graph.node_count());
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn psi2_alone_merges_albums_but_not_artists() {
        let cfg = MusicConfig {
            n_clean: 2,
            n_dupes: 1,
            seed: 9,
        };
        let inst = generate(&cfg);
        let ChaseResult::Consistent { coercion, .. } = chase(&inst.graph, &[crate::rules::psi2()])
        else {
            panic!()
        };
        // ψ2 merges the two album copies (title+release equal) but has no
        // rule to merge artists.
        assert_eq!(coercion.graph.node_count(), inst.graph.node_count() - 1);
        // Adding ψ3 lets the merge propagate to the artists.
        let ChaseResult::Consistent { coercion, .. } =
            chase(&inst.graph, &[crate::rules::psi2(), psi3()])
        else {
            panic!()
        };
        assert_eq!(coercion.graph.node_count(), inst.graph.node_count() - 2);
        let _ = psi1; // ψ1 exercised in chase_resolves_every_planted_cluster
    }
}
