//! Social-network generator (substitute for the fake-account dataset of
//! Example 1(2) / \[14\]; see DESIGN.md "Substitutions").
//!
//! Produces accounts and blogs with `like` and `post` edges and plants a
//! *fake-account cascade*: a seed account is confirmed fake
//! (`is_fake = 1`); a chain of accounts shares `k` liked blogs with its
//! predecessor, and both ends post keyword-`c` blogs — so iterating φ5 to
//! fixpoint should label the entire chain fake (the spam-detection
//! example's repair loop).

use ged_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Honest accounts.
    pub n_honest: usize,
    /// Blogs per honest account.
    pub blogs_per_account: usize,
    /// Length of the planted fake chain (≥ 1; the first is the confirmed
    /// seed).
    pub chain_len: usize,
    /// Shared-blog count `k` of pattern Q5.
    pub k: usize,
    /// The peculiar keyword `c`.
    pub keyword: String,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            n_honest: 30,
            blogs_per_account: 3,
            chain_len: 4,
            k: 2,
            keyword: "v1agr4".into(),
            seed: 11,
        }
    }
}

/// A generated social graph: the names of the planted fake accounts (in
/// cascade order; index 0 is the confirmed seed).
#[derive(Debug)]
pub struct SocialInstance {
    /// The graph.
    pub graph: Graph,
    /// Account names of the planted chain, seed first.
    pub fake_chain: Vec<String>,
}

/// Generate a social graph per `cfg`.
pub fn generate(cfg: &SocialConfig) -> SocialInstance {
    assert!(cfg.chain_len >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();

    // Honest accounts with their own blogs; sprinkle likes between them.
    for i in 0..cfg.n_honest {
        let a = format!("user_{i}");
        b.node(&a, "account");
        b.attr(&a, "is_fake", 0);
        for j in 0..cfg.blogs_per_account {
            let blog = format!("blog_{i}_{j}");
            b.node(&blog, "blog");
            b.attr(
                &blog,
                "keyword",
                format!("topic_{}", rng.random_range(0..10)),
            );
            b.edge(&a, "post", &blog);
            b.edge(&a, "like", &blog);
        }
    }
    // Random honest cross-likes.
    for i in 0..cfg.n_honest {
        let a = format!("user_{i}");
        let other = rng.random_range(0..cfg.n_honest);
        let j = rng.random_range(0..cfg.blogs_per_account.max(1));
        let blog = format!("blog_{other}_{j}");
        if b.contains(&blog) {
            b.edge(&a, "like", &blog);
        }
    }

    // The fake chain. Account fake_0 is the confirmed seed.
    let mut chain = Vec::new();
    for i in 0..cfg.chain_len {
        let a = format!("fake_{i}");
        b.node(&a, "account");
        if i == 0 {
            b.attr(&a, "is_fake", 1);
        }
        // Each fake account posts a keyword blog.
        let post = format!("spam_{i}");
        b.node(&post, "blog");
        b.attr(&post, "keyword", cfg.keyword.clone());
        b.edge(&a, "post", &post);
        chain.push(a);
    }
    // Consecutive chain members co-like k shared blogs.
    for i in 1..cfg.chain_len {
        for j in 0..cfg.k {
            let shared = format!("shared_{i}_{j}");
            b.node(&shared, "blog");
            b.attr(&shared, "keyword", format!("meme_{j}"));
            b.edge(&format!("fake_{}", i - 1), "like", &shared);
            b.edge(&format!("fake_{i}"), "like", &shared);
        }
    }

    SocialInstance {
        graph: b.build(),
        fake_chain: chain,
    }
}

/// Iterate φ5 repair to fixpoint: whenever a violating match is found, set
/// `x.is_fake = 1` on the accused account, and repeat. Returns the number
/// of accounts newly marked fake. This is the "use GEDs as rules" mode the
/// paper motivates for spam detection.
pub fn spam_cascade(graph: &mut Graph, k: usize, keyword: &str) -> usize {
    let rule = crate::rules::phi5(k, keyword);
    let is_fake = ged_graph::sym("is_fake");
    let x_var = rule.pattern.var_by_name("x").unwrap();
    let mut marked = 0;
    loop {
        let vs = ged_core::satisfy::violations(graph, &rule, Some(1));
        let Some(v) = vs.first() else {
            return marked;
        };
        let accused = v.assignment[x_var.idx()];
        graph.set_attr(accused, is_fake, 1);
        marked += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_core::satisfy::satisfies;
    use ged_graph::{sym, Value};

    #[test]
    fn generator_shape() {
        let cfg = SocialConfig::default();
        let inst = generate(&cfg);
        assert_eq!(inst.fake_chain.len(), cfg.chain_len);
        assert!(inst.graph.node_count() > cfg.n_honest);
    }

    #[test]
    fn phi5_flags_the_chain_next_hop() {
        let inst = generate(&SocialConfig::default());
        let rule = crate::rules::phi5(2, "v1agr4");
        assert!(
            !satisfies(&inst.graph, &rule),
            "fake_1 should be derivable from fake_0"
        );
    }

    #[test]
    fn cascade_marks_the_whole_chain_and_nothing_else() {
        let cfg = SocialConfig::default();
        let inst = generate(&cfg);
        let mut g = inst.graph.clone();
        let newly = spam_cascade(&mut g, cfg.k, &cfg.keyword);
        assert_eq!(newly, cfg.chain_len - 1, "everyone after the seed");
        // Now φ5 is satisfied.
        assert!(satisfies(&g, &crate::rules::phi5(cfg.k, &cfg.keyword)));
        // Honest accounts untouched.
        for i in 0..cfg.n_honest {
            let n = g.nodes_with_label(sym("account"))[i];
            let _ = n; // account order not guaranteed; check by attribute:
        }
        let fakes = g
            .nodes()
            .filter(|&n| g.attr(n, sym("is_fake")) == Some(&Value::from(1)))
            .count();
        assert_eq!(fakes, cfg.chain_len);
    }

    #[test]
    fn no_cascade_without_seed() {
        let cfg = SocialConfig {
            chain_len: 3,
            ..Default::default()
        };
        let inst = generate(&cfg);
        let mut g = inst.graph.clone();
        // Clear the seed's flag.
        let seed = g
            .nodes()
            .find(|&n| g.attr(n, sym("is_fake")) == Some(&Value::from(1)))
            .unwrap();
        g.set_attr(seed, sym("is_fake"), 0);
        assert_eq!(spam_cascade(&mut g, cfg.k, &cfg.keyword), 0);
    }

    #[test]
    fn homomorphism_collapses_the_k_shared_blogs() {
        // Under the paper's homomorphism semantics the k blog variables of
        // Q5 may all map to the SAME blog, so φ5(k=3) fires even when only
        // 2 distinct shared blogs exist — one shared blog suffices. (Under
        // subgraph isomorphism, k = 3 would genuinely require 3 blogs;
        // Section 3 discusses exactly this semantic gap.)
        let cfg = SocialConfig {
            k: 2,
            ..SocialConfig::default()
        };
        let inst = generate(&cfg);
        let mut g = inst.graph.clone();
        assert_eq!(
            spam_cascade(&mut g, 3, &cfg.keyword),
            cfg.chain_len - 1,
            "k collapses under homomorphism"
        );
        // With NO shared blogs the rule cannot fire at all.
        let lonely = SocialConfig {
            chain_len: 1,
            ..SocialConfig::default()
        };
        let mut g2 = generate(&lonely).graph.clone();
        assert_eq!(spam_cascade(&mut g2, 2, &lonely.keyword), 0);
    }
}
