//! The 3-colorability lower-bound constructions behind Theorems 3, 5
//! and 6 (EXP-T1-* in DESIGN.md), plus a brute-force 3-coloring oracle.
//!
//! A graph `G` is 3-colorable iff there is a homomorphism `G → K3`. The
//! reductions exploit exactly that:
//!
//! * **Validation, GFDˣ** (Theorem 6): data graph `K3`, one GFDˣ
//!   `Q_G[x̄](∅ → x1.A = x1.A)`. `K3` has no attributes, so *every* match
//!   violates — hence `K3 ⊨ φ` iff `Q_G` has **no** match iff `G` is not
//!   3-colorable.
//! * **Validation, GKey**: the same with the two-copy pattern and
//!   `∅ → x1.id = y1.id`; two homomorphisms can always send the copies of
//!   `x1` to different colors when a coloring exists.
//! * **Implication, GFDˣ / GKey** (Theorem 5): `Σ = {φ}` with φ over
//!   `Q_G ⊎ marker`, ϕ over `K3 ⊎ marker`; the chase of `G_Qϕ` fires φ iff
//!   `G → K3` exists, so `Σ ⊨ ϕ` iff `G` is 3-colorable.
//! * **Satisfiability, GFD** (Theorem 3): two GFDs pinning conflicting
//!   constants through the composition `G → K3 ↪ model`; satisfiable iff
//!   `G` is **not** 3-colorable.
//! * **Satisfiability, GKey**: three constant-free GKeys whose forced
//!   merges create a *label* conflict instead; same direction.
//!
//! Every construction is cross-validated against [`is_3_colorable`] in the
//! tests and the EXP harness — the executable content of Table 1's
//! hardness rows.

use ged_core::ged::Ged;
use ged_core::literal::Literal;
use ged_graph::{sym, Graph, NodeId};
use ged_pattern::{Pattern, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected 3-coloring instance.
#[derive(Debug, Clone)]
pub struct ColoringInstance {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges (u < v).
    pub edges: Vec<(usize, usize)>,
}

impl ColoringInstance {
    /// Build, normalising and deduplicating edges; self-loops are
    /// rejected (the reduction of \[37\] assumes none).
    pub fn new(n: usize, edges: &[(usize, usize)]) -> ColoringInstance {
        let mut es: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(u, v)| {
                assert!(u != v, "no self loops");
                assert!(u < n && v < n, "vertex out of range");
                (u.min(v), u.max(v))
            })
            .collect();
        es.sort_unstable();
        es.dedup();
        ColoringInstance { n, edges: es }
    }

    /// The cycle `C_n` (3-colorable iff `n` is even or `n ≥ 3` odd… C_n is
    /// 3-colorable for every `n ≥ 3`; it is 2-colorable iff even — so odd
    /// cycles exercise the third color).
    pub fn cycle(n: usize) -> ColoringInstance {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        ColoringInstance::new(n, &edges)
    }

    /// The complete graph `K_n` (3-colorable iff `n ≤ 3`).
    pub fn complete(n: usize) -> ColoringInstance {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        ColoringInstance::new(n, &edges)
    }

    /// A connected random instance (spanning path + extra random edges).
    pub fn random(n: usize, extra_edges: usize, seed: u64) -> ColoringInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        for _ in 0..extra_edges {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        ColoringInstance::new(n, &edges)
    }
}

/// Brute-force 3-coloring oracle (the ground truth for the reductions).
pub fn is_3_colorable(inst: &ColoringInstance) -> bool {
    fn rec(inst: &ColoringInstance, colors: &mut Vec<u8>, v: usize) -> bool {
        if v == inst.n {
            return true;
        }
        'outer: for c in 0..3u8 {
            for &(a, b) in &inst.edges {
                let other = if a == v && b < v {
                    b
                } else if b == v && a < v {
                    a
                } else {
                    continue;
                };
                if colors[other] == c {
                    continue 'outer;
                }
            }
            colors[v] = c;
            if rec(inst, colors, v + 1) {
                return true;
            }
        }
        false
    }
    if inst.n == 0 {
        return true;
    }
    rec(inst, &mut vec![3; inst.n], 0)
}

/// The pattern `Q_G`: one `c`-labelled variable per vertex, both edge
/// directions labelled `e` per undirected edge (homomorphism to the
/// symmetric `K3` then equals proper coloring).
pub fn instance_pattern(inst: &ColoringInstance, prefix: &str) -> Pattern {
    let mut q = Pattern::new();
    let vars: Vec<Var> = (0..inst.n)
        .map(|i| q.var(&format!("{prefix}{i}"), "c"))
        .collect();
    for &(u, v) in &inst.edges {
        q.edge(vars[u], "e", vars[v]);
        q.edge(vars[v], "e", vars[u]);
    }
    q
}

/// The triangle pattern `Q_K3` (3 `c`-nodes, all six directed `e` edges).
/// With `s_loops`, each node also carries an `s` self-loop — the decoration
/// that stops `Q_G` data from absorbing `K3` matches in the satisfiability
/// reduction.
pub fn k3_pattern(s_loops: bool) -> Pattern {
    let mut q = Pattern::new();
    let vars: Vec<Var> = (0..3).map(|i| q.var(&format!("k{i}"), "c")).collect();
    for u in 0..3 {
        for v in 0..3 {
            if u != v {
                q.edge(vars[u], "e", vars[v]);
            }
        }
        if s_loops {
            q.edge(vars[u], "s", vars[u]);
        }
    }
    q
}

/// The data graph `K3` (as a graph, no attributes).
pub fn k3_graph() -> Graph {
    let mut g = Graph::new();
    let c = sym("c");
    let e = sym("e");
    let nodes: Vec<NodeId> = (0..3).map(|_| g.add_node(c)).collect();
    for u in 0..3 {
        for v in 0..3 {
            if u != v {
                g.add_edge(nodes[u], e, nodes[v]);
            }
        }
    }
    g
}

// ---------------------------------------------------------------------
// Validation (Theorem 6)
// ---------------------------------------------------------------------

/// Validation instance with a single GFDˣ: `(K3, φ)` with
/// `K3 ⊨ φ ⟺ G not 3-colorable`.
pub fn validation_gfdx(inst: &ColoringInstance) -> (Graph, Ged) {
    let q = instance_pattern(inst, "x");
    let a = sym("A");
    let phi = Ged::new(
        "φ_3col",
        q,
        vec![],
        vec![Literal::vars(Var(0), a, Var(0), a)],
    );
    (k3_graph(), phi)
}

/// Validation instance with a single GKey: `(K3, ψ)` with
/// `K3 ⊨ ψ ⟺ G not 3-colorable` (two independent colorings can place the
/// designated vertex on different K3 nodes).
pub fn validation_gkey(inst: &ColoringInstance) -> (Graph, Ged) {
    let base = instance_pattern(inst, "x");
    let psi = Ged::gkey("ψ_3col", &base, Var(0), |_q, _o, _c| vec![]);
    (k3_graph(), psi)
}

// ---------------------------------------------------------------------
// Implication (Theorem 5)
// ---------------------------------------------------------------------

/// Implication instance with GFDˣs: `(Σ, ϕ)` with `Σ ⊨ ϕ ⟺ G 3-colorable`.
/// φ's pattern is `Q_G` plus a marker node `w(t)`; ϕ's pattern is `Q_K3`
/// plus the marker. Chasing `G_Qϕ` fires φ iff `Q_G` (hence `G`) maps into
/// `K3`.
pub fn implication_gfdx(inst: &ColoringInstance) -> (Vec<Ged>, Ged) {
    let b = sym("B");
    // φ over Q_G ⊎ {w: t}: ∅ → w.B = w.B
    let mut qg = instance_pattern(inst, "x");
    let w = qg.var("w", "t");
    let phi = Ged::new("φ", qg, vec![], vec![Literal::vars(w, b, w, b)]);
    // ϕ over Q_K3 ⊎ {w: t}: ∅ → w.B = w.B
    let mut qk = k3_pattern(false);
    let wk = qk.var("w", "t");
    let goal = Ged::new("ϕ", qk, vec![], vec![Literal::vars(wk, b, wk, b)]);
    (vec![phi], goal)
}

/// Implication instance with GKeys: same trick, with a doubled marker and
/// an id conclusion.
pub fn implication_gkey(inst: &ColoringInstance) -> (Vec<Ged>, Ged) {
    // φ over Q_G ⊎ {w1: t, w2: t}: ∅ → w1.id = w2.id
    let mut qg = instance_pattern(inst, "x");
    let w1 = qg.var("w1", "t");
    let w2 = qg.var("w2", "t");
    let phi = Ged::new("φ", qg, vec![], vec![Literal::id(w1, w2)]);
    // ϕ over Q_K3 ⊎ {w1: t, w2: t}: ∅ → w1.id = w2.id
    let mut qk = k3_pattern(false);
    let v1 = qk.var("w1", "t");
    let v2 = qk.var("w2", "t");
    let goal = Ged::new("ϕ", qk, vec![], vec![Literal::id(v1, v2)]);
    (vec![phi], goal)
}

// ---------------------------------------------------------------------
// Satisfiability (Theorem 3)
// ---------------------------------------------------------------------

/// Satisfiability instance with two GFDs (constant + variable literals):
/// `Σ` is satisfiable ⟺ `G` is **not** 3-colorable.
///
/// φ_G pins `flag = 0` on the image of `G`'s vertex 0; φ_K3 pins
/// `flag = 1` on all three (s-looped) triangle nodes. When `G → K3`
/// exists, any model must realise both flags on one node.
pub fn satisfiability_gfd(inst: &ColoringInstance) -> Vec<Ged> {
    let flag = sym("flag");
    let qg = instance_pattern(inst, "x");
    let phi_g = Ged::new("φ_G", qg, vec![], vec![Literal::constant(Var(0), flag, 0)]);
    let qk = k3_pattern(true);
    let phi_k = Ged::new(
        "φ_K3",
        qk,
        vec![],
        vec![
            Literal::constant(Var(0), flag, 1),
            Literal::constant(Var(1), flag, 1),
            Literal::constant(Var(2), flag, 1),
        ],
    );
    vec![phi_g, phi_k]
}

/// Satisfiability instance with three constant-free GKeys:
/// satisfiable ⟺ `G` **not** 3-colorable. Forced merges of a `p`-labelled
/// and a `q`-labelled node produce a *label* conflict instead of a
/// constant conflict.
pub fn satisfiability_gkey(inst: &ColoringInstance) -> Vec<Ged> {
    // ψ1: base = Q_G + x0 -f-> u(p), designated u: all p-witnesses merge.
    let mut b1 = instance_pattern(inst, "x");
    let u = b1.var("u", "p");
    b1.edge(Var(0), "f", u);
    let psi1 = Ged::gkey("ψ1", &b1, u, |_q, _o, _c| vec![]);
    // ψ2: base = Q_K3(s-loops) + k0 -f-> v(q), designated v.
    let mut b2 = k3_pattern(true);
    let v = b2.var("v", "q");
    b2.edge(Var(0), "f", v);
    let psi2 = Ged::gkey("ψ2", &b2, v, |_q, _o, _c| vec![]);
    // ψ3: base = Q_G + x0 -f-> w(_), designated w: merges every f-target
    // reachable through a G-homomorphism — in particular u (p) with v (q)
    // when G → K3 exists with x0 ↦ k0.
    let mut b3 = instance_pattern(inst, "x");
    let w = b3.var("w", "_");
    b3.edge(Var(0), "f", w);
    let psi3 = Ged::gkey("ψ3", &b3, w, |_q, _o, _c| vec![]);
    vec![psi1, psi2, psi3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_core::reason::{implies, is_satisfiable, validate};

    fn fixtures() -> Vec<(&'static str, ColoringInstance, bool)> {
        vec![
            ("K3", ColoringInstance::complete(3), true),
            ("K4", ColoringInstance::complete(4), false),
            ("C5", ColoringInstance::cycle(5), true),
            ("C4", ColoringInstance::cycle(4), true),
            ("path3", ColoringInstance::new(3, &[(0, 1), (1, 2)]), true),
        ]
    }

    #[test]
    fn oracle_ground_truth() {
        for (name, inst, colorable) in fixtures() {
            assert_eq!(is_3_colorable(&inst), colorable, "{name}");
        }
        // K4 plus an isolated vertex is still uncolorable.
        let mut k4 = ColoringInstance::complete(4);
        k4.n += 1;
        assert!(!is_3_colorable(&k4));
    }

    #[test]
    fn validation_gfdx_reduction_agrees_with_oracle() {
        for (name, inst, colorable) in fixtures() {
            let (g, phi) = validation_gfdx(&inst);
            let valid = validate(&g, std::slice::from_ref(&phi), Some(1)).satisfied();
            assert_eq!(valid, !colorable, "{name}: K3 ⊨ φ ⟺ ¬3col");
        }
    }

    #[test]
    fn validation_gkey_reduction_agrees_with_oracle() {
        for (name, inst, colorable) in fixtures() {
            let (g, psi) = validation_gkey(&inst);
            assert!(psi.is_gkey(), "{name}: shape");
            let valid = validate(&g, std::slice::from_ref(&psi), Some(1)).satisfied();
            assert_eq!(valid, !colorable, "{name}");
        }
    }

    #[test]
    fn implication_gfdx_reduction_agrees_with_oracle() {
        for (name, inst, colorable) in fixtures() {
            let (sigma, goal) = implication_gfdx(&inst);
            assert_eq!(implies(&sigma, &goal), colorable, "{name}");
        }
    }

    #[test]
    fn implication_gkey_reduction_agrees_with_oracle() {
        for (name, inst, colorable) in fixtures() {
            let (sigma, goal) = implication_gkey(&inst);
            assert_eq!(implies(&sigma, &goal), colorable, "{name}");
        }
    }

    #[test]
    fn satisfiability_gfd_reduction_agrees_with_oracle() {
        for (name, inst, colorable) in fixtures() {
            let sigma = satisfiability_gfd(&inst);
            assert!(sigma.iter().all(Ged::is_gfd));
            assert_eq!(is_satisfiable(&sigma), !colorable, "{name}");
        }
    }

    #[test]
    fn satisfiability_gkey_reduction_agrees_with_oracle() {
        for (name, inst, colorable) in fixtures() {
            let sigma = satisfiability_gkey(&inst);
            assert!(sigma.iter().all(ged_core::Ged::is_gedx), "constant-free");
            assert_eq!(is_satisfiable(&sigma), !colorable, "{name}");
        }
    }
}
