//! The GEDs of Example 3 (φ1–φ5, ψ1–ψ3), shared by the examples, the
//! integration tests and the experiments harness.

use ged_core::ged::Ged;
use ged_core::literal::Literal;
use ged_graph::sym;
use ged_pattern::{fragments, parse_pattern, Var};

/// φ1 = `Q1[x,y](y.type = "video game" → x.type = "programmer")`: a video
/// game can only be created by programmers.
pub fn phi1() -> Ged {
    let q = fragments::fig1_q1();
    let x = q.var_by_name("x").unwrap();
    let y = q.var_by_name("y").unwrap();
    Ged::new(
        "φ1",
        q,
        vec![Literal::constant(y, sym("type"), "video game")],
        vec![Literal::constant(x, sym("type"), "programmer")],
    )
}

/// φ2 = `Q2[x,y,z](∅ → y.name = z.name)`: a country's capitals carry one
/// name.
pub fn phi2() -> Ged {
    let q = fragments::fig1_q2();
    let y = q.var_by_name("y").unwrap();
    let z = q.var_by_name("z").unwrap();
    Ged::new(
        "φ2",
        q,
        vec![],
        vec![Literal::vars(y, sym("name"), z, sym("name"))],
    )
}

/// φ3 = `Q3[x,y](x.A = x.A → y.A = x.A)` with `A = can_fly`: `is_a`
/// inheritance (catches the moa/birds inconsistency).
pub fn phi3() -> Ged {
    let q = fragments::fig1_q3();
    let x = q.var_by_name("x").unwrap();
    let y = q.var_by_name("y").unwrap();
    let a = sym("can_fly");
    Ged::new(
        "φ3",
        q,
        vec![Literal::vars(x, a, x, a)],
        vec![Literal::vars(y, a, x, a)],
    )
}

/// φ4 = `Q4[x,y](∅ → false)`: nobody is both child and parent of the same
/// person.
pub fn phi4() -> Ged {
    Ged::forbidding("φ4", fragments::fig1_q4(), vec![])
}

/// φ5(k, c) = the spam rule over `Q5`: if `x'` is confirmed fake, both
/// accounts like the same `k` blogs, and both posted blogs carry the
/// peculiar keyword `c`, then `x` is fake too.
pub fn phi5(k: usize, keyword: &str) -> Ged {
    let q = fragments::fig1_q5(k);
    let x = q.var_by_name("x").unwrap();
    let xp = q.var_by_name("x'").unwrap();
    let z1 = q.var_by_name("z1").unwrap();
    let z2 = q.var_by_name("z2").unwrap();
    Ged::new(
        format!("φ5(k={k})"),
        q,
        vec![
            Literal::constant(xp, sym("is_fake"), 1),
            Literal::constant(z1, sym("keyword"), keyword),
            Literal::constant(z2, sym("keyword"), keyword),
        ],
        vec![Literal::constant(x, sym("is_fake"), 1)],
    )
}

/// ψ1 = `Q6(x.title = y.title ∧ x'.id = y'.id → x.id = y.id)`: an album is
/// identified by its title and the identity of its primary artist.
pub fn psi1() -> Ged {
    let base = parse_pattern("album(x) -[by]-> artist(x')").unwrap();
    let x = base.var_by_name("x").unwrap();
    Ged::gkey("ψ1", &base, x, |_q, o, c| {
        vec![
            Literal::vars(o[0], sym("title"), c[0], sym("title")),
            Literal::id(o[1], c[1]),
        ]
    })
}

/// ψ2 = `Q7(x.title = y.title ∧ x.release = y.release → x.id = y.id)`.
pub fn psi2() -> Ged {
    let base = parse_pattern("album(x)").unwrap();
    Ged::gkey("ψ2", &base, Var(0), |_q, o, c| {
        vec![
            Literal::vars(o[0], sym("title"), c[0], sym("title")),
            Literal::vars(o[0], sym("release"), c[0], sym("release")),
        ]
    })
}

/// ψ3 = `Q6(x'.name = y'.name ∧ x.id = y.id → x'.id = y'.id)`: an artist
/// is identified by name plus the identity of an album they recorded —
/// mutually recursive with ψ1.
pub fn psi3() -> Ged {
    let base = parse_pattern("album(x) -[by]-> artist(x')").unwrap();
    let xp = base.var_by_name("x'").unwrap();
    Ged::gkey("ψ3", &base, xp, |_q, o, c| {
        vec![
            Literal::vars(o[1], sym("name"), c[1], sym("name")),
            Literal::id(o[0], c[0]),
        ]
    })
}

/// The knowledge-base rule set {φ1, φ2, φ3, φ4}.
pub fn kb_rules() -> Vec<Ged> {
    vec![phi1(), phi2(), phi3(), phi4()]
}

/// The entity-resolution key set {ψ1, ψ2, ψ3}.
pub fn music_keys() -> Vec<Ged> {
    vec![psi1(), psi2(), psi3()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_core::ged::GedClass;

    #[test]
    fn classifications_match_the_paper() {
        // Example 3: "ϕ1–ϕ5 are GFDs, but ψ1–ψ3 are not";
        // "ϕ2 and ϕ3 are GFDxs"; "ψ1–ψ3 are GEDxs but not GFDxs".
        assert!(phi1().is_gfd());
        assert!(phi2().is_gfdx());
        assert!(phi3().is_gfdx());
        assert!(phi4().is_gfd());
        assert!(phi5(2, "c").is_gfd());
        for k in [psi1(), psi2(), psi3()] {
            assert!(!k.is_gfd());
            assert!(k.is_gedx());
            assert!(!k.is_gfdx());
            assert!(k.is_gkey());
            assert_eq!(k.class(), GedClass::GKey);
        }
    }

    #[test]
    fn recursive_keys_reference_each_other() {
        // ψ1's premises carry an artist id literal; ψ3's an album id
        // literal — the mutual recursion of Example 1(3).
        assert!(psi1().premises.iter().any(ged_core::Literal::is_id));
        assert!(psi3().premises.iter().any(ged_core::Literal::is_id));
    }

    #[test]
    fn rule_sets_and_strong_satisfiability() {
        // φ1–φ3 and the keys are satisfiable.
        assert!(ged_core::reason::is_satisfiable(&[phi1(), phi2(), phi3()]));
        assert!(ged_core::reason::is_satisfiable(&music_keys()));
        // But the FULL kb set is NOT: the paper's *strong* satisfiability
        // requires every pattern to be embedded in the model, and the
        // forbidding φ4 then fires on its own embedded pattern. Forbidding
        // GEDs are validation rules, not model constraints (Section 4:
        // "a forbidding constraint can be applied only when G is dirty").
        assert!(!ged_core::reason::is_satisfiable(&kb_rules()));
    }
}
