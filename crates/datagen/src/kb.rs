//! Synthetic knowledge-base generator (substitute for Yago3/DBpedia in
//! Example 1(1); see DESIGN.md "Substitutions").
//!
//! Generates a typed entity graph — people, products, countries, cities,
//! species/classes — and *plants* a controlled number of each of the four
//! inconsistency kinds the paper quotes, recording ground truth so the
//! consistency-checking experiment can report precision/recall:
//!
//! 1. creator-type errors (ϕ1): a video game created by a non-programmer;
//! 2. two-capital errors (ϕ2): a country with two differently-named
//!    capitals;
//! 3. inheritance errors (ϕ3): an `is_a` child contradicting the parent's
//!    `can_fly`;
//! 4. child-and-parent errors (ϕ4): both `child` and `parent` edges
//!    between the same pair.

use ged_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct KbConfig {
    /// Clean person–product creation pairs.
    pub n_creations: usize,
    /// Clean country–capital pairs.
    pub n_countries: usize,
    /// Clean `is_a` species→class pairs.
    pub n_species: usize,
    /// Clean person–person parent relations.
    pub n_families: usize,
    /// Planted violations of each kind (ϕ1, ϕ2, ϕ3, ϕ4).
    pub planted: [usize; 4],
    /// RNG seed.
    pub seed: u64,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            n_creations: 50,
            n_countries: 20,
            n_species: 30,
            n_families: 20,
            planted: [3, 2, 3, 2],
            seed: 7,
        }
    }
}

/// Ground truth about one planted violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Planted {
    /// Which rule it violates: 1..=4 for ϕ1..ϕ4.
    pub rule: u8,
    /// A human-readable description of the planted error.
    pub description: String,
}

/// A generated knowledge base plus its ground truth.
#[derive(Debug)]
pub struct KbInstance {
    /// The graph.
    pub graph: Graph,
    /// The planted violations.
    pub planted: Vec<Planted>,
}

/// Generate a knowledge base per `cfg`.
pub fn generate(cfg: &KbConfig) -> KbInstance {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();
    let mut planted = Vec::new();

    // Clean creations: programmers create video games, authors create
    // books.
    for i in 0..cfg.n_creations {
        let p = format!("person_{i}");
        let w = format!("work_{i}");
        let game = rng.random_bool(0.5);
        b.node(&p, "person");
        b.node(&w, "product");
        b.edge(&p, "create", &w);
        if game {
            b.attr(&p, "type", "programmer");
            b.attr(&w, "type", "video game");
        } else {
            b.attr(&p, "type", "author");
            b.attr(&w, "type", "book");
        }
    }
    // Planted ϕ1 violations: psychologists credited with video games.
    for i in 0..cfg.planted[0] {
        let p = format!("bad_creator_{i}");
        let w = format!("bad_game_{i}");
        b.node(&p, "person");
        b.node(&w, "product");
        b.edge(&p, "create", &w);
        b.attr(&p, "type", "psychologist");
        b.attr(&w, "type", "video game");
        planted.push(Planted {
            rule: 1,
            description: format!("{p} (psychologist) credited with {w}"),
        });
    }

    // Clean countries: one capital each.
    for i in 0..cfg.n_countries {
        let c = format!("country_{i}");
        let k = format!("capital_{i}");
        b.node(&c, "country");
        b.node(&k, "city");
        b.edge(&c, "capital", &k);
        b.attr(&k, "name", format!("City {i}"));
    }
    // Planted ϕ2: a second, differently named capital.
    for i in 0..cfg.planted[1] {
        let c = format!("twocap_country_{i}");
        let k1 = format!("twocap_a_{i}");
        let k2 = format!("twocap_b_{i}");
        b.node(&c, "country");
        b.node(&k1, "city");
        b.node(&k2, "city");
        b.edge(&c, "capital", &k1);
        b.edge(&c, "capital", &k2);
        b.attr(&k1, "name", format!("Alpha {i}"));
        b.attr(&k2, "name", format!("Beta {i}"));
        planted.push(Planted {
            rule: 2,
            description: format!("{c} has two capitals"),
        });
    }

    // Clean is_a: species inherit can_fly from their class.
    for i in 0..cfg.n_species {
        let s = format!("species_{i}");
        let c = format!("class_{i}");
        let f = rng.random_bool(0.5);
        b.node(&s, "species");
        b.node(&c, "class");
        b.edge(&s, "is_a", &c);
        b.attr(&c, "can_fly", f);
        b.attr(&s, "can_fly", f);
    }
    // Planted ϕ3: flightless members of flying classes.
    for i in 0..cfg.planted[2] {
        let s = format!("moa_{i}");
        let c = format!("birds_{i}");
        b.node(&s, "species");
        b.node(&c, "class");
        b.edge(&s, "is_a", &c);
        b.attr(&c, "can_fly", true);
        b.attr(&s, "can_fly", false);
        planted.push(Planted {
            rule: 3,
            description: format!("{s} contradicts {c}.can_fly"),
        });
    }

    // Clean families: parent edges only.
    for i in 0..cfg.n_families {
        let a = format!("parent_{i}");
        let ch = format!("kid_{i}");
        b.node(&a, "person");
        b.node(&ch, "person");
        b.edge(&ch, "child", &a);
    }
    // Planted ϕ4: both child and parent of the same person.
    for i in 0..cfg.planted[3] {
        let a = format!("sclater_{i}");
        let w = format!("william_{i}");
        b.node(&a, "person");
        b.node(&w, "person");
        b.edge(&a, "child", &w);
        b.edge(&a, "parent", &w);
        planted.push(Planted {
            rule: 4,
            description: format!("{a} is both child and parent of {w}"),
        });
    }

    KbInstance {
        graph: b.build(),
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;
    use ged_core::reason::validate;

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&KbConfig::default());
        let b = generate(&KbConfig::default());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn planted_counts_match_ground_truth() {
        let cfg = KbConfig {
            planted: [4, 3, 2, 1],
            ..KbConfig::default()
        };
        let inst = generate(&cfg);
        assert_eq!(inst.planted.len(), 10);
        for (rule, expect) in [(1u8, 4usize), (2, 3), (3, 2), (4, 1)] {
            assert_eq!(
                inst.planted.iter().filter(|p| p.rule == rule).count(),
                expect
            );
        }
    }

    #[test]
    fn validation_catches_exactly_the_planted_errors() {
        // Precision = recall = 1 in terms of per-rule violation detection:
        // each rule flags violations iff it has planted errors.
        let cfg = KbConfig {
            n_creations: 20,
            n_countries: 10,
            n_species: 10,
            n_families: 10,
            planted: [2, 1, 2, 1],
            seed: 42,
        };
        let inst = generate(&cfg);
        let report = validate(&inst.graph, &rules::kb_rules(), None);
        assert!(!report.satisfied());
        // φ1: exactly the 2 planted bad creators.
        assert_eq!(report.per_ged[0].violation_count, 2);
        // φ2: each two-capital country yields 2 symmetric matches.
        assert_eq!(report.per_ged[1].violation_count, 2);
        // φ3: the planted moas (flightless members of flying classes).
        assert_eq!(report.per_ged[2].violation_count, 2);
        // φ4: the planted child-parent pairs.
        assert_eq!(report.per_ged[3].violation_count, 1);
    }

    #[test]
    fn clean_kb_validates() {
        let cfg = KbConfig {
            planted: [0, 0, 0, 0],
            ..KbConfig::default()
        };
        let inst = generate(&cfg);
        assert!(inst.planted.is_empty());
        let report = validate(&inst.graph, &rules::kb_rules(), None);
        assert!(
            report.satisfied(),
            "violated: {:?}",
            report.violated_names()
        );
    }
}
