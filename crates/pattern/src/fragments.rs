//! The concrete patterns and graphs of the paper's figures.
//!
//! * **Figure 1** — patterns `Q1 … Q7` described in Example 2 and used by
//!   the GEDs of Example 3;
//! * **Figure 2** — the graph `G` and patterns `Q1, Q2` of the chase
//!   Example 4;
//! * **Figure 3** — the patterns of the satisfiability Examples 5 & 6
//!   (`Q1`, `Q2` = two copies of Q1's shape, `Q2'` = Q2 plus an extra
//!   connected component `C2`);
//! * **Figure 4** — the patterns of the implication Example 7.
//!
//! Keeping them in one place lets the core crate's tests, the integration
//! tests, the examples and the experiments harness all exercise *exactly*
//! the same constructions.

use crate::dsl::parse_pattern;
use crate::pattern::Pattern;
use ged_graph::{Graph, GraphBuilder, NodeId};

/// Figure 1, `Q1[x, y]`: a person connected to a product by a `create`
/// edge. Used by GED φ1 ("a video game can only be created by
/// programmers").
pub fn fig1_q1() -> Pattern {
    parse_pattern("person(x) -[create]-> product(y)").unwrap()
}

/// Figure 1, `Q2[x, y, z]`: a country with two `capital` edges. Used by
/// φ2 ("a country has one capital name").
pub fn fig1_q2() -> Pattern {
    parse_pattern("country(x) -[capital]-> city(y); (x) -[capital]-> city(z)").unwrap()
}

/// Figure 1, `Q3[x, y]`: a generic `is_a` relation between two wildcard
/// entities. Used by φ3 (attribute inheritance; catches the moa/birds
/// inconsistency).
pub fn fig1_q3() -> Pattern {
    parse_pattern("_(x) <-[is_a]- _(y)").unwrap()
}

/// Figure 1, `Q4[x, y]`: a person that is both `child` and `parent` of
/// another. Used by the forbidding GED φ4 (`∅ → false`).
pub fn fig1_q4() -> Pattern {
    parse_pattern("person(x) -[child]-> person(y); (x) -[parent]-> (y)").unwrap()
}

/// Figure 1, `Q5[x, x', z1, z2, y1, …, yk]`: the spam-detection pattern —
/// accounts `x`, `x'` both `like` blogs `y1..yk`; `x` posts `z1`, `x'`
/// posts `z2`. `k` is the number of shared blogs.
pub fn fig1_q5(k: usize) -> Pattern {
    let mut q = Pattern::new();
    let x = q.var("x", "account");
    let xp = q.var("x'", "account");
    let z1 = q.var("z1", "blog");
    let z2 = q.var("z2", "blog");
    q.edge(x, "post", z1);
    q.edge(xp, "post", z2);
    for i in 1..=k {
        let y = q.var(&format!("y{i}"), "blog");
        q.edge(x, "like", y);
        q.edge(xp, "like", y);
    }
    q
}

/// Figure 1, `Q6[x, x', y, y']`: `Q6^1[x, x']` (album `x` by artist `x'`)
/// together with a copy `Q6^2[y, y']` — the two-copy pattern of the GKeys
/// ψ1 (album) and ψ3 (artist).
pub fn fig1_q6() -> Pattern {
    parse_pattern("album(x) -[by]-> artist(x'); album(y) -[by]-> artist(y')").unwrap()
}

/// Figure 1, `Q7[x, y]`: two (isolated) album entities — the pattern of
/// GKey ψ2 (album identified by title + release year).
pub fn fig1_q7() -> Pattern {
    parse_pattern("album(x); album(y)").unwrap()
}

/// Figure 2: the graph `G` of Example 4 — `v1, v2` labelled `a` with
/// attribute `A = 1`, `v1'` labelled `b`, `v2'` labelled `c`, and edges
/// `v1 → v1'`, `v2 → v2'` labelled `e`. Returns `(G, [v1, v2, v1', v2'])`.
pub fn fig2_graph() -> (Graph, [NodeId; 4]) {
    let mut b = GraphBuilder::new();
    b.node("v1", "a");
    b.node("v2", "a");
    b.node("v1p", "b");
    b.node("v2p", "c");
    b.attr("v1", "A", 1).attr("v2", "A", 1);
    b.edge("v1", "e", "v1p").edge("v2", "e", "v2p");
    let (g, names) = b.build_with_names();
    let ids = [names["v1"], names["v2"], names["v1p"], names["v2p"]];
    (g, ids)
}

/// Figure 2, `Q1[x, y]`: two isolated `a`-labelled nodes — the pattern of
/// φ1 = `Q1[x, y](x.A = y.A → x.id = y.id)`.
pub fn fig2_q1() -> Pattern {
    parse_pattern("a(x); a(y)").unwrap()
}

/// Figure 2, `Q2[x, y, z]`: an `a`-node with `e`-edges to two wildcard
/// nodes — the pattern of φ2 = `Q2[x, y, z](∅ → y.id = z.id)`. After the
/// chase merges `v1, v2`, it matches `x ↦ v1v2, y ↦ v1', z ↦ v2'` and
/// forces the conflicting merge of `v1'` (label `b`) with `v2'` (label `c`).
pub fn fig2_q2() -> Pattern {
    parse_pattern("a(x) -[e]-> _(y); (x) -[e]-> _(z)").unwrap()
}

/// Figure 3, `Q1[x, y, z]`: `x` (label `a`) with `e`-edges to `y` (label
/// `b`) and `z` (label `c`) — pattern of
/// φ1 = `Q1(x.A = x.B → y.id = z.id)` in Example 5.
pub fn fig3_q1() -> Pattern {
    parse_pattern("a(x) -[e]-> b(y); (x) -[e]-> c(z)").unwrap()
}

/// Figure 3, `Q2[x1, y1, z1, x2, y2, z2]`: two disjoint copies of Q1's
/// shape — pattern of φ2 = `Q2(∅ → x1.A = x1.B)`. The homomorphism `f`
/// from Q2 to Q1 (both copies onto Q1) drives the unsatisfiability of
/// Σ1 = {φ1, φ2}.
pub fn fig3_q2() -> Pattern {
    parse_pattern("a(x1) -[e]-> b(y1); (x1) -[e]-> c(z1); a(x2) -[e]-> b(y2); (x2) -[e]-> c(z2)")
        .unwrap()
}

/// Figure 3, `Q2'`: Q2 plus an extra connected component `C2` (a `d`-node
/// with an edge to a `d'`-node), so that Q1 and Q2' are *not* homomorphic
/// to each other, yet Σ2 = {φ1, φ2'} is still unsatisfiable (Example 5(2)).
pub fn fig3_q2_prime() -> Pattern {
    parse_pattern(
        "a(x1) -[e]-> b(y1); (x1) -[e]-> c(z1); a(x2) -[e]-> b(y2); (x2) -[e]-> c(z2); d(w1) -[g]-> dd(w2)",
    )
    .unwrap()
}

/// Section 3 / Example: the "UoE" GKey pattern — two isolated nodes with
/// the same label. Under homomorphism Σ = {Q\[x,y\](∅ → x.id = y.id)} has a
/// (single-node) model; under subgraph isomorphism it has none — the
/// paper's argument for the homomorphism semantics.
pub fn uoe_pattern() -> Pattern {
    parse_pattern("UoE(x); UoE(y)").unwrap()
}

/// Figure 4, `Q[x1, x2, x3, x4]`: `x1, x2` labelled `_`; `x3` labelled `a`;
/// `x4` labelled `b`; no edges. The GED ϕ of Example 7 is
/// `Q(x1.A = x3.A ∧ x2.B = x4.B → x1.id = x3.id ∧ x2.id = x4.id)`.
pub fn fig4_q() -> Pattern {
    parse_pattern("_(x1); _(x2); a(x3); b(x4)").unwrap()
}

/// Figure 4, `Q1[x1, x2]`: two wildcard nodes — pattern of
/// φ1 = `Q1(x1.A = x2.A → x1.id = x2.id)`.
pub fn fig4_q1() -> Pattern {
    parse_pattern("_(x1); _(x2)").unwrap()
}

/// Figure 4, `Q2[x1, x2]`: two wildcard nodes — pattern of
/// φ2 = `Q2(x1.B = x2.B → x1.A = x1.B)`.
pub fn fig4_q2() -> Pattern {
    parse_pattern("_(x1); _(x2)").unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{count, exists, MatchOptions};
    use ged_graph::sym;

    #[test]
    fn fig1_shapes() {
        assert_eq!(fig1_q1().size(), 3);
        assert_eq!(fig1_q2().var_count(), 3);
        assert_eq!(fig1_q2().edge_count(), 2);
        assert_eq!(fig1_q3().var_count(), 2);
        assert!(fig1_q3()
            .label(fig1_q3().var_by_name("x").unwrap())
            .is_wildcard());
        assert_eq!(fig1_q4().edge_count(), 2);
        let q5 = fig1_q5(3);
        assert_eq!(q5.var_count(), 2 + 2 + 3);
        assert_eq!(q5.edge_count(), 2 + 2 * 3);
        assert_eq!(fig1_q6().var_count(), 4);
        assert_eq!(fig1_q7().edge_count(), 0);
    }

    #[test]
    fn fig1_q6_is_a_two_copy_pattern() {
        // Build Q6 as copy_via and compare shape with the DSL version.
        let mut q = Pattern::new();
        let x = q.var("x", "album");
        let xp = q.var("x'", "artist");
        q.edge(x, "by", xp);
        let (copy, _) = q.copy_via(|n| n.replace('x', "y"));
        let (q6, _) = q.disjoint_union(&copy);
        let dsl = fig1_q6();
        assert_eq!(q6.var_count(), dsl.var_count());
        assert_eq!(q6.edge_count(), dsl.edge_count());
    }

    #[test]
    fn fig2_graph_matches_paper() {
        let (g, [v1, v2, v1p, v2p]) = fig2_graph();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.attr(v1, sym("A")), g.attr(v2, sym("A")));
        assert_ne!(
            g.label(v1p),
            g.label(v2p),
            "v1' and v2' have distinct labels"
        );
        // Q1 matches (two a-nodes exist)
        assert!(exists(&fig2_q1(), &g, MatchOptions::homomorphism()));
        // Q2 does NOT match G with distinct y,z before the merge
        // (each a-node has only one out-edge; y and z can only both map to
        // the same node, which Q2 allows under homomorphism):
        let ms = crate::matcher::find_all(&fig2_q2(), &g, MatchOptions::homomorphism());
        for m in &ms {
            let q2 = fig2_q2();
            let y = q2.var_by_name("y").unwrap();
            let z = q2.var_by_name("z").unwrap();
            assert_eq!(m[y.idx()], m[z.idx()], "pre-merge, y and z coincide");
        }
    }

    #[test]
    fn fig3_q2_has_homomorphism_to_q1_but_q2_prime_does_not() {
        let q1g = fig3_q1().canonical_graph();
        // Q2 maps homomorphically into G_{Q1} (both copies collapse onto Q1)
        assert!(exists(&fig3_q2(), &q1g, MatchOptions::homomorphism()));
        // Q2' does not (component C2 has labels d/dd not present in Q1)
        assert!(!exists(
            &fig3_q2_prime(),
            &q1g,
            MatchOptions::homomorphism()
        ));
        // and Q1 does not map into G_{Q2'} — wait, it does: Q2' contains a
        // copy of Q1's shape. The paper says "Q1 is not homomorphic to Q2'
        // and vice versa" referring to Q2' ↛ Q1; Q1 ↪ Q2' holds:
        assert!(exists(
            &fig3_q1(),
            &fig3_q2_prime().canonical_graph(),
            MatchOptions::homomorphism()
        ));
    }

    #[test]
    fn uoe_pattern_matches_single_node_only_under_homomorphism() {
        let mut g = Graph::new();
        g.add_node(sym("UoE"));
        let q = uoe_pattern();
        assert_eq!(count(&q, &g, MatchOptions::homomorphism()), 1);
        assert_eq!(count(&q, &g, MatchOptions::isomorphism()), 0);
    }

    #[test]
    fn fig4_patterns() {
        let q = fig4_q();
        assert_eq!(q.var_count(), 4);
        assert_eq!(q.edge_count(), 0);
        assert!(q.label(q.var_by_name("x1").unwrap()).is_wildcard());
        assert_eq!(q.label(q.var_by_name("x3").unwrap()), sym("a"));
        assert_eq!(fig4_q1().var_count(), 2);
        assert_eq!(fig4_q2().var_count(), 2);
    }
}
