//! Pattern matching: graph **homomorphism** (the paper's semantics,
//! Section 2 "Matches") and **subgraph isomorphism** (the semantics of
//! [19, 23], kept as a baseline — Section 3 argues at length why GEDs need
//! homomorphism).
//!
//! A match of `Q[x̄]` in `G` is a mapping `h : x̄ → V` such that
//! * `L_Q(u) ⪯ L(h(u))` for every pattern node `u`, and
//! * for every pattern edge `(u, ι, u′)` there is an edge
//!   `(h(u), ι′, h(u′))` in `G` with `ι ⪯ ι′`.
//!
//! Homomorphisms may map distinct variables to the same node; subgraph
//! isomorphism adds injectivity. Both share the backtracking engine below:
//! connectivity-aware variable ordering, adjacency-derived candidate sets,
//! and label pruning. The engine enumerates matches in a deterministic
//! order, which downstream code (chase, validation reports) relies on for
//! reproducibility.

use crate::pattern::{Pattern, Var};
use ged_graph::{Graph, NodeId, Symbol, Value};
use ged_obs::{MatchRecorder, NoopRecorder, NOOP};
use std::borrow::Cow;
use std::ops::ControlFlow;

/// Matching semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Graph homomorphism (the paper's GED semantics).
    Homomorphism,
    /// Subgraph isomorphism: `h` must be injective (the semantics of
    /// GFDs \[23\] and keys \[19\]; makes GKeys vacuous — see Section 3).
    Isomorphism,
}

/// Tuning knobs, exposed so the matching ablation bench (EXP-ABL-MATCH in
/// DESIGN.md) can switch heuristics off.
#[derive(Debug, Clone, Copy)]
pub struct MatchOptions {
    /// Matching semantics.
    pub semantics: Semantics,
    /// Order variables by connectivity/candidate count instead of
    /// declaration order.
    pub smart_order: bool,
    /// Derive candidate sets from already-assigned neighbours instead of
    /// scanning all label candidates.
    pub adjacency_candidates: bool,
    /// Serve candidate lists for non-wildcard pattern edge labels from the
    /// graph's label-partitioned adjacency view ([`Graph::out_edges_labeled`])
    /// instead of filtering the flat edge lists. The labeled groups are
    /// already sorted and duplicate-free, so this skips the per-extension
    /// filter *and* the sort/dedup. Candidate lists are byte-identical to
    /// the filtered path; the flag exists for the lockstep equivalence
    /// tests and the EXP-MATCH with/without comparison.
    pub labeled_adjacency: bool,
    /// Reject a candidate before recursing when its labeled in/out degree
    /// cannot cover the pattern variable's edges, or when a required
    /// constant-valued attribute (see [`Matcher::require_attr`]) already
    /// fails. The degree filter never changes the match set — a rejected
    /// candidate could not have completed a match.
    pub prefilter: bool,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            semantics: Semantics::Homomorphism,
            smart_order: true,
            adjacency_candidates: true,
            labeled_adjacency: true,
            prefilter: true,
        }
    }
}

impl MatchOptions {
    /// Default options for homomorphism matching.
    pub fn homomorphism() -> Self {
        Self::default()
    }

    /// Default options for subgraph-isomorphism matching.
    pub fn isomorphism() -> Self {
        MatchOptions {
            semantics: Semantics::Isomorphism,
            ..Self::default()
        }
    }
}

/// A total match `h(x̄)`: node per variable, indexed by `Var`.
pub type Match = Vec<NodeId>;

/// Reusable scratch space for the backtracking search: one candidate
/// buffer per recursion depth, the completed-match buffer, and the
/// partial-assignment vector. A `Matcher` run through the `*_in` entry
/// points writes candidates into these cleared buffers instead of
/// allocating a fresh `Vec` per variable per recursion — the engine's
/// shard workers each own one scratch and thread it through every work
/// unit, so steady-state matching is allocation-free.
///
/// The buffers grow to the high-water mark of the patterns run through
/// them and stay there; a scratch is plain state, safe to reuse across
/// different patterns and graphs.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// One candidate buffer per backtracking depth.
    levels: Vec<Vec<NodeId>>,
    /// The completed match handed to the visitor callback.
    full: Vec<NodeId>,
    /// Partial assignment, indexed by `Var`.
    assign: Vec<Option<NodeId>>,
}

impl MatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }
}

/// Per-variable degree obligations, precomputed from the pattern: the
/// distinct non-wildcard edge labels the variable's image must have at
/// least one outgoing/incoming edge under, plus whether any wildcard
/// pattern edge demands *some* out/in edge. Existence (not counts) is
/// the right requirement under homomorphism: several same-label pattern
/// edges may map to one data edge.
#[derive(Debug, Clone, Default)]
struct DegreeReq {
    out_labels: Vec<Symbol>,
    in_labels: Vec<Symbol>,
    needs_out: bool,
    needs_in: bool,
}

fn degree_reqs(pattern: &Pattern) -> Vec<DegreeReq> {
    let mut reqs = vec![DegreeReq::default(); pattern.var_count()];
    for v in pattern.vars() {
        let req = &mut reqs[v.idx()];
        for &(el, _) in pattern.out_edges(v) {
            if el.is_wildcard() {
                req.needs_out = true;
            } else if !req.out_labels.contains(&el) {
                req.out_labels.push(el);
            }
        }
        for &(el, _) in pattern.in_edges(v) {
            if el.is_wildcard() {
                req.needs_in = true;
            } else if !req.in_labels.contains(&el) {
                req.in_labels.push(el);
            }
        }
    }
    reqs
}

/// The matcher: borrows a pattern and a graph, precomputes the search order.
///
/// The recorder parameter `R` is the observability hook of the hot loop:
/// it defaults to [`NoopRecorder`], whose empty methods monomorphize away,
/// so un-observed matching compiles to the engine it always was. Observed
/// enumeration goes through [`Matcher::with_recorder`].
#[derive(Debug)]
pub struct Matcher<'a, R: MatchRecorder = NoopRecorder> {
    pattern: &'a Pattern,
    graph: &'a Graph,
    opts: MatchOptions,
    order: Vec<Var>,
    degree_req: Vec<DegreeReq>,
    /// Per-variable `(attribute, value)` obligations for the constant
    /// pre-filter; empty unless [`Matcher::require_attr`] was called.
    required_attrs: Vec<Vec<(Symbol, Value)>>,
    recorder: &'a R,
}

impl<'a> Matcher<'a> {
    /// Build a matcher for `pattern` over `graph` (unobserved: the no-op
    /// recorder costs nothing).
    pub fn new(pattern: &'a Pattern, graph: &'a Graph, opts: MatchOptions) -> Matcher<'a> {
        Matcher::with_recorder(pattern, graph, opts, &NOOP)
    }
}

impl<'a, R: MatchRecorder> Matcher<'a, R> {
    /// Build a matcher whose hot loop reports to `recorder`: one
    /// [`MatchRecorder::on_attempt`] per candidate node considered, one
    /// [`MatchRecorder::on_match`] per complete match. The engine's
    /// instrumented paths pass a `CellRecorder` per work unit and fold
    /// the tallies into per-worker shards.
    pub fn with_recorder(
        pattern: &'a Pattern,
        graph: &'a Graph,
        opts: MatchOptions,
        recorder: &'a R,
    ) -> Matcher<'a, R> {
        let order = if opts.smart_order {
            smart_order(pattern, graph)
        } else {
            pattern.vars().collect()
        };
        Matcher {
            pattern,
            graph,
            opts,
            order,
            degree_req: degree_reqs(pattern),
            required_attrs: vec![Vec::new(); pattern.var_count()],
            recorder,
        }
    }

    /// Require every match to map `var` to a node carrying attribute
    /// `attr` with exactly `value`; candidates failing it are rejected by
    /// the pre-filter before the subtree below them is explored.
    ///
    /// Unlike the degree pre-filter this **changes the match set** — it
    /// is the violation-enumeration shortcut: when a constraint's premise
    /// contains the constant literal `x.A = c`, matches where it fails
    /// can never witness a violation, so the engine pushes the literal
    /// into the matcher instead of enumerating and discarding. Has no
    /// effect when [`MatchOptions::prefilter`] is off.
    pub fn require_attr(&mut self, var: Var, attr: Symbol, value: Value) {
        self.required_attrs[var.idx()].push((attr, value));
    }

    /// Visit every match; `f` returns [`ControlFlow::Break`] to stop early.
    /// Returns `true` if enumeration ran to completion.
    ///
    /// Allocates a fresh [`MatchScratch`] per call; hot paths that run
    /// many enumerations should own a scratch and use
    /// [`Matcher::for_each_in`].
    pub fn for_each(&self, mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>) -> bool {
        self.for_each_in(&mut MatchScratch::new(), &mut f)
    }

    /// As [`Matcher::for_each`], writing candidate sets into the caller's
    /// reusable `scratch` instead of allocating.
    pub fn for_each_in(
        &self,
        scratch: &mut MatchScratch,
        mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool {
        // The no-exclusion closure monomorphizes to a constant `false`, so
        // plain enumeration compiles down to the engine it always had.
        self.for_each_seeded_excluding_in(scratch, &[], &|_, _| false, &mut f)
    }

    /// Visit every match extending the given partial assignment (“seeded”
    /// matching). Seeds must satisfy the label constraint; constraint edges
    /// among seeds are checked during the search as usual.
    pub fn for_each_seeded(
        &self,
        seed: &[(Var, NodeId)],
        mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool {
        self.for_each_seeded_excluding(seed, &|_, _| false, &mut f)
    }

    /// As [`Matcher::for_each_seeded`], additionally rejecting `v ↦ n`
    /// whenever `excluded(v, n)` holds. The exclusion applies to the
    /// *searched* variables only — seeded variables are pre-assigned and
    /// exempt, which is exactly what anchored enumeration with a
    /// responsibility discipline needs (the anchor deliberately maps into
    /// the set other variables must avoid).
    pub fn for_each_seeded_excluding<E>(
        &self,
        seed: &[(Var, NodeId)],
        excluded: &E,
        mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool
    where
        E: Fn(Var, NodeId) -> bool + ?Sized,
    {
        self.for_each_seeded_excluding_in(&mut MatchScratch::new(), seed, excluded, &mut f)
    }

    /// As [`Matcher::for_each_seeded_excluding`], reusing the caller's
    /// `scratch` for candidate sets and the partial assignment.
    pub fn for_each_seeded_excluding_in<E>(
        &self,
        scratch: &mut MatchScratch,
        seed: &[(Var, NodeId)],
        excluded: &E,
        mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool
    where
        E: Fn(Var, NodeId) -> bool + ?Sized,
    {
        scratch.assign.clear();
        scratch.assign.resize(self.pattern.var_count(), None);
        for &(v, n) in seed {
            if !self.pattern.label(v).matches(self.graph.label(n)) {
                return true; // no matches; enumeration trivially complete
            }
            scratch.assign[v.idx()] = Some(n);
        }
        // Check constraint edges among the seeds up front.
        for e in self.pattern.pattern_edges() {
            if let (Some(s), Some(d)) = (scratch.assign[e.src.idx()], scratch.assign[e.dst.idx()]) {
                if !self.graph.has_edge_matching(s, e.label, d) {
                    return true;
                }
            }
        }
        if self.opts.semantics == Semantics::Isomorphism {
            let mut used = std::collections::HashSet::new();
            for &(_, n) in seed {
                if !used.insert(n) {
                    return true;
                }
            }
        }
        self.backtrack(0, scratch, excluded, &mut f).is_continue()
    }

    /// Visit every match that maps `anchor` to one of `seeds` (*anchored*
    /// enumeration). This is the affected-area primitive of the incremental
    /// validation engine: with `seeds` the set of nodes a delta touched,
    /// the union over all anchor variables covers exactly the matches whose
    /// image intersects the touched set. Returns `true` if enumeration ran
    /// to completion (no early break).
    pub fn for_each_anchored(
        &self,
        anchor: Var,
        seeds: &[NodeId],
        mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool {
        self.for_each_anchored_excluding(anchor, seeds, &|_, _| false, &mut f)
    }

    /// As [`Matcher::for_each_anchored`], reusing the caller's `scratch`.
    pub fn for_each_anchored_in(
        &self,
        scratch: &mut MatchScratch,
        anchor: Var,
        seeds: &[NodeId],
        mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool {
        self.for_each_anchored_excluding_in(scratch, anchor, seeds, &|_, _| false, &mut f)
    }

    /// Anchored enumeration with per-variable *excluded* candidate sets:
    /// visit every match that maps `anchor` to one of `seeds` and maps no
    /// variable `v` to a node `n` with `excluded(v, n)` (the anchor itself
    /// is seeded and therefore exempt). Exclusions prune candidates at
    /// assignment time, *before* the subtree below them is explored.
    ///
    /// This is how the incremental engine enumerates each affected match
    /// exactly once: anchoring variable `v` on the touched set while
    /// excluding touched nodes from all variables declared before `v`
    /// leaves precisely the matches whose *first* touched variable is `v`,
    /// so the union over anchor variables is duplicate-free — no post-hoc
    /// owner filter, no redundant enumeration.
    pub fn for_each_anchored_excluding<E>(
        &self,
        anchor: Var,
        seeds: &[NodeId],
        excluded: &E,
        f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool
    where
        E: Fn(Var, NodeId) -> bool + ?Sized,
    {
        self.for_each_anchored_excluding_in(&mut MatchScratch::new(), anchor, seeds, excluded, f)
    }

    /// As [`Matcher::for_each_anchored_excluding`], reusing the caller's
    /// `scratch`. The pre-filters (when [`MatchOptions::prefilter`] is on)
    /// also screen the anchor seeds themselves — a seed whose labeled
    /// degree or required attributes already fail is skipped without
    /// entering the search.
    pub fn for_each_anchored_excluding_in<E>(
        &self,
        scratch: &mut MatchScratch,
        anchor: Var,
        seeds: &[NodeId],
        excluded: &E,
        mut f: impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> bool
    where
        E: Fn(Var, NodeId) -> bool + ?Sized,
    {
        // The seeds are the anchor's candidate list: count them as
        // attempts so anchored enumeration attributes cost like the plain
        // candidate loop does (a single-variable rule would otherwise
        // report matches with zero attempts).
        self.recorder.add_attempts(seeds.len() as u64);
        for &n in seeds {
            if self.opts.prefilter && self.prefilter_rejects(anchor, n) {
                self.recorder.on_prefilter_reject();
                continue;
            }
            if !self.for_each_seeded_excluding_in(scratch, &[(anchor, n)], excluded, &mut f) {
                return false;
            }
        }
        true
    }

    fn backtrack<E>(
        &self,
        depth: usize,
        scratch: &mut MatchScratch,
        excluded: &E,
        f: &mut impl FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()>
    where
        E: Fn(Var, NodeId) -> bool + ?Sized,
    {
        // Skip already-assigned (seeded) variables.
        let mut depth = depth;
        while depth < self.order.len() && scratch.assign[self.order[depth].idx()].is_some() {
            depth += 1;
        }
        if depth == self.order.len() {
            self.recorder.on_match();
            scratch.full.clear();
            scratch
                .full
                .extend(scratch.assign.iter().map(|o| o.unwrap()));
            return f(&scratch.full);
        }
        let v = self.order[depth];
        if scratch.levels.len() <= depth {
            scratch.levels.resize_with(depth + 1, Vec::new);
        }
        // Take this depth's buffer out of the scratch for the duration of
        // the level; deeper recursion only touches deeper buffers, and the
        // buffer is restored (capacity intact) before returning.
        let mut buf = std::mem::take(&mut scratch.levels[depth]);
        self.candidates_into(v, &scratch.assign, &mut buf);
        // Attempts count every candidate in the list unconditionally, so
        // report the whole level in one call — the hot loop itself stays
        // hook-free.
        self.recorder.add_attempts(buf.len() as u64);
        let mut flow = ControlFlow::Continue(());
        for &n in &buf {
            if excluded(v, n) {
                continue;
            }
            if self.opts.prefilter && self.prefilter_rejects(v, n) {
                self.recorder.on_prefilter_reject();
                continue;
            }
            if !self.consistent(v, n, &scratch.assign) {
                continue;
            }
            scratch.assign[v.idx()] = Some(n);
            let inner = self.backtrack(depth + 1, scratch, excluded, f);
            scratch.assign[v.idx()] = None;
            if inner.is_break() {
                flow = inner;
                break;
            }
        }
        scratch.levels[depth] = buf;
        flow
    }

    /// Write the candidate data nodes for `v` given the partial assignment
    /// into `buf` (cleared first): derived from an already-assigned
    /// neighbour when possible (cheap), otherwise from the label index.
    /// The list is sorted and duplicate-free either way, so enumeration
    /// order does not depend on which path produced it.
    fn candidates_into(&self, v: Var, assign: &[Option<NodeId>], buf: &mut Vec<NodeId>) {
        buf.clear();
        let lv = self.pattern.label(v);
        if self.opts.adjacency_candidates {
            // v required as dst of an assigned src?
            for &(el, u) in self.pattern.in_edges(v) {
                if let Some(hu) = assign[u.idx()] {
                    if self.opts.labeled_adjacency && !el.is_wildcard() {
                        // The labeled group is sorted and duplicate-free:
                        // exactly the old filtered+sorted+deduped list.
                        buf.extend(
                            self.graph
                                .out_edges_labeled(hu, el)
                                .iter()
                                .copied()
                                .filter(|&d| lv.matches(self.graph.label(d))),
                        );
                    } else {
                        buf.extend(
                            self.graph
                                .out_edges(hu)
                                .iter()
                                .filter(|&&(l, d)| el.matches(l) && lv.matches(self.graph.label(d)))
                                .map(|&(_, d)| d),
                        );
                        buf.sort_unstable();
                        buf.dedup();
                    }
                    return;
                }
            }
            // v required as src of an assigned dst?
            for &(el, u) in self.pattern.out_edges(v) {
                if let Some(hu) = assign[u.idx()] {
                    if self.opts.labeled_adjacency && !el.is_wildcard() {
                        buf.extend(
                            self.graph
                                .in_edges_labeled(hu, el)
                                .iter()
                                .copied()
                                .filter(|&s| lv.matches(self.graph.label(s))),
                        );
                    } else {
                        buf.extend(
                            self.graph
                                .in_edges(hu)
                                .iter()
                                .filter(|&&(l, s)| el.matches(l) && lv.matches(self.graph.label(s)))
                                .map(|&(_, s)| s),
                        );
                        buf.sort_unstable();
                        buf.dedup();
                    }
                    return;
                }
            }
        }
        match self.graph.label_candidates(lv) {
            Cow::Borrowed(c) => buf.extend_from_slice(c),
            Cow::Owned(c) => buf.extend(c),
        }
    }

    /// The cheap pre-filters: labeled-degree coverage and required
    /// constant attributes. `true` means `v ↦ n` cannot be part of any
    /// match of interest and the candidate is skipped before recursion.
    fn prefilter_rejects(&self, v: Var, n: NodeId) -> bool {
        let req = &self.degree_req[v.idx()];
        if req.needs_out && self.graph.out_edges(n).is_empty() {
            return true;
        }
        if req.needs_in && self.graph.in_edges(n).is_empty() {
            return true;
        }
        if req
            .out_labels
            .iter()
            .any(|&l| self.graph.out_degree_labeled(n, l) == 0)
        {
            return true;
        }
        if req
            .in_labels
            .iter()
            .any(|&l| self.graph.in_degree_labeled(n, l) == 0)
        {
            return true;
        }
        self.required_attrs[v.idx()]
            .iter()
            .any(|(a, val)| self.graph.attr(n, *a) != Some(val))
    }

    /// Check `v ↦ n` against labels, constraint edges to assigned
    /// variables, and (for isomorphism) injectivity.
    fn consistent(&self, v: Var, n: NodeId, assign: &[Option<NodeId>]) -> bool {
        if !self.pattern.label(v).matches(self.graph.label(n)) {
            return false;
        }
        if self.opts.semantics == Semantics::Isomorphism && assign.contains(&Some(n)) {
            return false;
        }
        for &(el, d) in self.pattern.out_edges(v) {
            if d == v {
                if !self.graph.has_edge_matching(n, el, n) {
                    return false;
                }
                continue;
            }
            if let Some(hd) = assign[d.idx()] {
                if !self.graph.has_edge_matching(n, el, hd) {
                    return false;
                }
            }
        }
        for &(el, s) in self.pattern.in_edges(v) {
            if s == v {
                continue; // self-loop handled above
            }
            if let Some(hs) = assign[s.idx()] {
                if !self.graph.has_edge_matching(hs, el, n) {
                    return false;
                }
            }
        }
        true
    }
}

/// Order variables: start at the most constrained (fewest label candidates,
/// highest degree), then repeatedly pick the unvisited variable with the
/// most edges into the visited set (tiebreak: fewer candidates). Keeps the
/// search connected, which makes adjacency-derived candidates applicable.
fn smart_order(pattern: &Pattern, graph: &Graph) -> Vec<Var> {
    let n = pattern.var_count();
    if n == 0 {
        return Vec::new();
    }
    let cand_count: Vec<usize> = pattern
        .vars()
        .map(|v| {
            let l = pattern.label(v);
            if l.is_wildcard() {
                graph.node_count()
            } else {
                graph.nodes_with_label(l).len()
            }
        })
        .collect();
    let mut order: Vec<Var> = Vec::with_capacity(n);
    let mut picked = vec![false; n];
    while order.len() < n {
        let mut best: Option<(usize, usize, usize)> = None; // (-(connections), cand, idx)
        for v in pattern.vars() {
            if picked[v.idx()] {
                continue;
            }
            let connections = pattern
                .out_edges(v)
                .iter()
                .map(|&(_, d)| d)
                .chain(pattern.in_edges(v).iter().map(|&(_, s)| s))
                .filter(|u| picked[u.idx()])
                .count();
            let key = (usize::MAX - connections, cand_count[v.idx()], v.idx());
            if best.is_none() || key < best.unwrap() {
                best = Some(key);
            }
        }
        let (_, _, idx) = best.unwrap();
        picked[idx] = true;
        order.push(Var(idx as u32));
    }
    order
}

/// All matches of `pattern` in `graph` under `opts`. Use only when the
/// result set is known to be small; prefer [`Matcher::for_each`] otherwise.
pub fn find_all(pattern: &Pattern, graph: &Graph, opts: MatchOptions) -> Vec<Match> {
    let mut out = Vec::new();
    Matcher::new(pattern, graph, opts).for_each(|m| {
        out.push(m.to_vec());
        ControlFlow::Continue(())
    });
    out
}

/// The first match, if any.
pub fn find_first(pattern: &Pattern, graph: &Graph, opts: MatchOptions) -> Option<Match> {
    let mut out = None;
    Matcher::new(pattern, graph, opts).for_each(|m| {
        out = Some(m.to_vec());
        ControlFlow::Break(())
    });
    out
}

/// Does any match exist? Breaks out of the backtracking search at the
/// first complete match without materialising it (unlike [`find_first`],
/// which must clone the match to return it) — this sits on the hot path
/// of model checks (`pattern_embeds`) over every constraint of Σ.
pub fn exists(pattern: &Pattern, graph: &Graph, opts: MatchOptions) -> bool {
    let mut found = false;
    Matcher::new(pattern, graph, opts).for_each(|_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Count all matches (enumerates them all — exponential in the worst case).
pub fn count(pattern: &Pattern, graph: &Graph, opts: MatchOptions) -> usize {
    let mut n = 0usize;
    Matcher::new(pattern, graph, opts).for_each(|_| {
        n += 1;
        ControlFlow::Continue(())
    });
    n
}

/// Brute-force reference matcher: tries all `|V|^|x̄|` assignments. Used by
/// the property tests to validate the backtracking engine.
pub fn find_all_brute(pattern: &Pattern, graph: &Graph, opts: MatchOptions) -> Vec<Match> {
    let nv = pattern.var_count();
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut out = Vec::new();
    if nv == 0 {
        out.push(Vec::new());
        return out;
    }
    if nodes.is_empty() {
        return out;
    }
    let mut idx = vec![0usize; nv];
    // One assignment buffer refilled in place per permutation; cloned only
    // for the (rare) permutations that actually match. This is the oracle
    // in the randomized lockstep tests, so its cost bounds CI time.
    let mut assign: Vec<NodeId> = vec![nodes[0]; nv];
    'outer: loop {
        for (slot, &i) in assign.iter_mut().zip(idx.iter()) {
            *slot = nodes[i];
        }
        if is_match(pattern, graph, &assign, opts.semantics) {
            out.push(assign.clone());
        }
        // increment
        for d in (0..nv).rev() {
            idx[d] += 1;
            if idx[d] < nodes.len() {
                continue 'outer;
            }
            idx[d] = 0;
            if d == 0 {
                break 'outer;
            }
        }
    }
    out
}

/// Check whether a full assignment is a match.
pub fn is_match(pattern: &Pattern, graph: &Graph, assign: &[NodeId], sem: Semantics) -> bool {
    if assign.len() != pattern.var_count() {
        return false;
    }
    if sem == Semantics::Isomorphism {
        let mut seen = std::collections::HashSet::new();
        if !assign.iter().all(|n| seen.insert(*n)) {
            return false;
        }
    }
    for v in pattern.vars() {
        if !pattern.label(v).matches(graph.label(assign[v.idx()])) {
            return false;
        }
    }
    for e in pattern.pattern_edges() {
        if !graph.has_edge_matching(assign[e.src.idx()], e.label, assign[e.dst.idx()]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::GraphBuilder;

    fn creator_graph() -> Graph {
        // tony -create-> gb ; gibbo -create-> gb ; ada -create-> engine
        let mut b = GraphBuilder::new();
        b.triple(("tony", "person"), "create", ("gb", "product"));
        b.triple(("gibbo", "person"), "create", ("gb", "product"));
        b.triple(("ada", "person"), "create", ("engine", "product"));
        b.build()
    }

    fn q1() -> Pattern {
        let mut q = Pattern::new();
        let x = q.var("x", "person");
        let y = q.var("y", "product");
        q.edge(x, "create", y);
        q
    }

    #[test]
    fn homomorphism_finds_all_creator_pairs() {
        let g = creator_graph();
        let ms = find_all(&q1(), &g, MatchOptions::homomorphism());
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn non_injective_matches_allowed_under_homomorphism() {
        // Pattern: two independent person nodes. Graph has 3 persons.
        let g = creator_graph();
        let mut q = Pattern::new();
        q.var("x", "person");
        q.var("y", "person");
        let homo = count(&q, &g, MatchOptions::homomorphism());
        let iso = count(&q, &g, MatchOptions::isomorphism());
        assert_eq!(homo, 9, "3 × 3 assignments");
        assert_eq!(iso, 6, "3 × 2 injective assignments");
    }

    #[test]
    fn wildcard_node_label_matches_everything() {
        let g = creator_graph();
        let mut q = Pattern::new();
        q.var("x", "_");
        assert_eq!(count(&q, &g, MatchOptions::homomorphism()), g.node_count());
    }

    #[test]
    fn wildcard_edge_label() {
        let g = creator_graph();
        let mut q = Pattern::new();
        let x = q.var("x", "_");
        let y = q.var("y", "_");
        q.edge(x, "_", y);
        // one match per edge (all 3 edges), endpoints are forced
        assert_eq!(count(&q, &g, MatchOptions::homomorphism()), 3);
    }

    #[test]
    fn concrete_pattern_label_does_not_match_wildcard_data_label() {
        // A data graph containing a '_'-labelled node (as arises when
        // chasing canonical graphs, Section 4).
        let mut g = Graph::new();
        g.add_node(ged_graph::sym("_"));
        let mut q = Pattern::new();
        q.var("x", "person");
        assert!(!exists(&q, &g, MatchOptions::homomorphism()));
        // but a wildcard pattern node does match the wildcard data node
        let mut qw = Pattern::new();
        qw.var("x", "_");
        assert!(exists(&qw, &g, MatchOptions::homomorphism()));
    }

    #[test]
    fn self_loop_pattern() {
        let mut g = Graph::new();
        let a = g.add_node(ged_graph::sym("t"));
        let b = g.add_node(ged_graph::sym("t"));
        g.add_edge(a, ged_graph::sym("e"), a);
        g.add_edge(a, ged_graph::sym("e"), b);
        let mut q = Pattern::new();
        let x = q.var("x", "t");
        q.edge(x, "e", x);
        let ms = find_all(&q, &g, MatchOptions::homomorphism());
        assert_eq!(ms, vec![vec![a]]);
    }

    #[test]
    fn triangle_pattern_requires_triangle() {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..3).map(|_| g.add_node(ged_graph::sym("t"))).collect();
        let e = ged_graph::sym("e");
        g.add_edge(n[0], e, n[1]);
        g.add_edge(n[1], e, n[2]);
        let mut q = Pattern::new();
        let x = q.var("x", "t");
        let y = q.var("y", "t");
        let z = q.var("z", "t");
        q.edge(x, "e", y);
        q.edge(y, "e", z);
        q.edge(z, "e", x);
        assert!(!exists(&q, &g, MatchOptions::homomorphism()));
        g.add_edge(n[2], e, n[0]);
        assert!(exists(&q, &g, MatchOptions::homomorphism()));
    }

    #[test]
    fn seeded_matching_restricts_results() {
        let g = creator_graph();
        let q = q1();
        let x = q.var_by_name("x").unwrap();
        let tony = g.nodes_with_label(ged_graph::sym("person"))[0];
        let mut found = Vec::new();
        Matcher::new(&q, &g, MatchOptions::homomorphism()).for_each_seeded(&[(x, tony)], |m| {
            found.push(m.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(found.len(), 1);
        assert_eq!(found[0][x.idx()], tony);
    }

    #[test]
    fn seeded_matching_rejects_bad_seed_label() {
        let g = creator_graph();
        let q = q1();
        let x = q.var_by_name("x").unwrap();
        let gb = g.nodes_with_label(ged_graph::sym("product"))[0];
        let mut found = 0;
        Matcher::new(&q, &g, MatchOptions::homomorphism()).for_each_seeded(&[(x, gb)], |_| {
            found += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(found, 0);
    }

    #[test]
    fn anchored_matching_unions_over_seeds() {
        let g = creator_graph();
        let q = q1();
        let x = q.var_by_name("x").unwrap();
        let persons = g.nodes_with_label(ged_graph::sym("person")).to_vec();
        // Anchoring x on all persons re-derives the full match set.
        let mut found = Vec::new();
        let completed = Matcher::new(&q, &g, MatchOptions::homomorphism()).for_each_anchored(
            x,
            &persons,
            |m| {
                found.push(m.to_vec());
                ControlFlow::Continue(())
            },
        );
        assert!(completed);
        assert_eq!(found.len(), 3);
        // Anchoring on a two-node subset restricts to their matches.
        let mut restricted = 0;
        Matcher::new(&q, &g, MatchOptions::homomorphism()).for_each_anchored(
            x,
            &persons[..2],
            |_| {
                restricted += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(restricted, 2);
        // Early break propagates out of the seed loop.
        let mut seen = 0;
        let completed = Matcher::new(&q, &g, MatchOptions::homomorphism()).for_each_anchored(
            x,
            &persons,
            |_| {
                seen += 1;
                ControlFlow::Break(())
            },
        );
        assert!(!completed);
        assert_eq!(seen, 1);
    }

    /// The incremental engine's exactly-once discipline, probed at the
    /// matcher level: anchoring each variable on the touched set while
    /// excluding touched nodes from earlier-declared variables must visit
    /// every affected match exactly once — the callback count equals the
    /// number of distinct affected matches, with no discards.
    #[test]
    fn exclusion_aware_anchoring_enumerates_each_affected_match_once() {
        use std::collections::HashSet;
        let mut g = Graph::new();
        let t = ged_graph::sym("t");
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_node(t)).collect();
        // Two independent variables: under homomorphism every ordered pair
        // (including repeats) matches, so touched nodes appear in several
        // variable positions at once — the case the old owner filter
        // enumerated redundantly.
        let mut q = Pattern::new();
        q.var("x", "t");
        q.var("y", "t");
        let touched: HashSet<NodeId> = nodes[..2].iter().copied().collect();
        let seeds: Vec<NodeId> = touched.iter().copied().collect();
        let matcher = Matcher::new(&q, &g, MatchOptions::homomorphism());

        let mut calls = 0usize;
        let mut seen: HashSet<Match> = HashSet::new();
        for v in q.vars() {
            let completed = matcher.for_each_anchored_excluding(
                v,
                &seeds,
                &|u, n| u.idx() < v.idx() && touched.contains(&n),
                |m| {
                    calls += 1;
                    assert!(seen.insert(m.to_vec()), "match {m:?} enumerated twice");
                    // The anchor owns the match: no earlier variable maps
                    // into the touched set.
                    let first_touched = q.vars().find(|u| touched.contains(&m[u.idx()]));
                    assert_eq!(first_touched, Some(v));
                    ControlFlow::Continue(())
                },
            );
            assert!(completed);
        }
        // Affected matches: all (x, y) ∈ 4×4 with x or y touched.
        let affected = find_all(&q, &g, MatchOptions::homomorphism())
            .into_iter()
            .filter(|m| m.iter().any(|n| touched.contains(n)))
            .collect::<HashSet<_>>();
        assert_eq!(affected.len(), 12, "4² pairs minus the 2² untouched ones");
        assert_eq!(seen, affected, "exactly the affected matches");
        assert_eq!(calls, affected.len(), "each enumerated exactly once");
    }

    #[test]
    fn excluding_nothing_equals_plain_anchoring() {
        let g = creator_graph();
        let q = q1();
        let x = q.var_by_name("x").unwrap();
        let persons = g.nodes_with_label(ged_graph::sym("person")).to_vec();
        let matcher = Matcher::new(&q, &g, MatchOptions::homomorphism());
        let mut plain = Vec::new();
        matcher.for_each_anchored(x, &persons, |m| {
            plain.push(m.to_vec());
            ControlFlow::Continue(())
        });
        let mut excluding = Vec::new();
        matcher.for_each_anchored_excluding(x, &persons, &|_, _| false, |m| {
            excluding.push(m.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(plain, excluding);
    }

    #[test]
    fn exclusions_do_not_apply_to_seeds() {
        let g = creator_graph();
        let q = q1();
        let x = q.var_by_name("x").unwrap();
        let tony = g.nodes_with_label(ged_graph::sym("person"))[0];
        // Excluding every node from every variable still lets the seeded
        // anchor through — only searched variables are restricted (and
        // here y's candidates are all excluded, so nothing completes).
        let mut found = 0;
        Matcher::new(&q, &g, MatchOptions::homomorphism()).for_each_anchored_excluding(
            x,
            &[tony],
            &|_, _| true,
            |_| {
                found += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(found, 0, "y is excluded everywhere");
        // Excluding only x (the anchor) changes nothing.
        let mut found = 0;
        Matcher::new(&q, &g, MatchOptions::homomorphism()).for_each_anchored_excluding(
            x,
            &[tony],
            &|u, _| u == x,
            |_| {
                found += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(found, 1);
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let g = creator_graph();
        let mut seen = 0;
        let completed = Matcher::new(&q1(), &g, MatchOptions::homomorphism()).for_each(|_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
        assert!(!completed);
    }

    #[test]
    fn empty_pattern_has_one_empty_match() {
        let g = creator_graph();
        let q = Pattern::new();
        assert_eq!(count(&q, &g, MatchOptions::homomorphism()), 1);
    }

    #[test]
    fn heuristics_do_not_change_the_match_set() {
        let g = creator_graph();
        let q = q1();
        let base: std::collections::HashSet<Match> = find_all(&q, &g, MatchOptions::homomorphism())
            .into_iter()
            .collect();
        for smart in [false, true] {
            for adj in [false, true] {
                for lab in [false, true] {
                    for pre in [false, true] {
                        let opts = MatchOptions {
                            semantics: Semantics::Homomorphism,
                            smart_order: smart,
                            adjacency_candidates: adj,
                            labeled_adjacency: lab,
                            prefilter: pre,
                        };
                        let got: std::collections::HashSet<Match> =
                            find_all(&q, &g, opts).into_iter().collect();
                        assert_eq!(got, base, "smart={smart} adj={adj} lab={lab} pre={pre}");
                    }
                }
            }
        }
    }

    /// The degree pre-filter kills dead-end candidates (and tallies them)
    /// without changing the match set; with the filter off no rejects are
    /// reported.
    #[test]
    fn degree_prefilter_rejects_dead_ends_and_preserves_matches() {
        use ged_obs::CellRecorder;
        let mut g = Graph::new();
        let person = ged_graph::sym("person");
        let product = ged_graph::sym("product");
        let create = ged_graph::sym("create");
        let maker = g.add_node(person);
        let idle1 = g.add_node(person); // no out-edges: dead end for x
        let idle2 = g.add_node(person);
        let item = g.add_node(product);
        g.add_edge(maker, create, item);
        let _ = (idle1, idle2);
        let mut q = Pattern::new();
        let x = q.var("x", "person");
        let y = q.var("y", "product");
        q.edge(x, "create", y);

        // Scan label candidates directly (heuristics off) so the dead-end
        // persons actually reach the filter.
        let scan = MatchOptions {
            smart_order: false,
            adjacency_candidates: false,
            ..MatchOptions::homomorphism()
        };
        let rec = CellRecorder::new();
        let mut found = Vec::new();
        Matcher::with_recorder(&q, &g, scan, &rec).for_each(|m| {
            found.push(m.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(found, vec![vec![maker, item]]);
        assert_eq!(
            rec.prefilter_rejects(),
            2,
            "both edge-less persons rejected before recursion"
        );

        let off = MatchOptions {
            prefilter: false,
            ..scan
        };
        let rec_off = CellRecorder::new();
        let mut found_off = Vec::new();
        Matcher::with_recorder(&q, &g, off, &rec_off).for_each(|m| {
            found_off.push(m.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(found_off, found, "filter never changes the match set");
        assert_eq!(rec_off.prefilter_rejects(), 0);
    }

    /// `require_attr` narrows enumeration to candidates carrying the
    /// constant attribute — the violation-premise shortcut.
    #[test]
    fn required_attrs_narrow_the_match_set() {
        let mut g = Graph::new();
        let person = ged_graph::sym("person");
        let fake = ged_graph::sym("is_fake");
        let a = g.add_node(person);
        let b = g.add_node(person);
        g.set_attr(a, fake, Value::Int(1));
        g.set_attr(b, fake, Value::Int(0));
        let mut q = Pattern::new();
        let x = q.var("x", "person");
        let mut m = Matcher::new(&q, &g, MatchOptions::homomorphism());
        m.require_attr(x, fake, Value::Int(1));
        let mut found = Vec::new();
        m.for_each(|h| {
            found.push(h.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(found, vec![vec![a]], "only the is_fake=1 node survives");
        // Float/int numeric equality follows `Value`'s PartialEq.
        let mut m = Matcher::new(&q, &g, MatchOptions::homomorphism());
        m.require_attr(x, fake, Value::Float(1.0));
        assert!(!m.for_each(|_| ControlFlow::Break(())), "1.0 matches 1");
    }

    /// One scratch reused across runs, patterns, and graphs yields the
    /// same matches as fresh allocation.
    #[test]
    fn scratch_reuse_across_runs_is_equivalent() {
        let g = creator_graph();
        let q = q1();
        let mut scratch = MatchScratch::new();
        let matcher = Matcher::new(&q, &g, MatchOptions::homomorphism());
        for _ in 0..3 {
            let mut got = Vec::new();
            matcher.for_each_in(&mut scratch, |m| {
                got.push(m.to_vec());
                ControlFlow::Continue(())
            });
            assert_eq!(got, find_all(&q, &g, MatchOptions::homomorphism()));
        }
        // A different (larger) pattern through the same scratch.
        let mut q2 = Pattern::new();
        let x = q2.var("x", "person");
        let y = q2.var("y", "product");
        let z = q2.var("z", "person");
        q2.edge(x, "create", y);
        q2.edge(z, "create", y);
        let matcher2 = Matcher::new(&q2, &g, MatchOptions::homomorphism());
        let mut got = Vec::new();
        matcher2.for_each_in(&mut scratch, |m| {
            got.push(m.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(got, find_all(&q2, &g, MatchOptions::homomorphism()));
    }

    /// The recorder hook observes without perturbing: a recorded run
    /// yields the same matches as a plain one, `on_match` fires once per
    /// match, and `on_attempt` counts every candidate considered (so it
    /// dominates the match count for non-empty patterns).
    #[test]
    fn recorder_counts_attempts_and_matches_without_changing_results() {
        use ged_obs::CellRecorder;
        let g = creator_graph();
        let q = q1();
        let plain = find_all(&q, &g, MatchOptions::homomorphism());
        let rec = CellRecorder::new();
        let mut observed = Vec::new();
        Matcher::with_recorder(&q, &g, MatchOptions::homomorphism(), &rec).for_each(|m| {
            observed.push(m.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(observed, plain, "recording does not change the matches");
        assert_eq!(rec.matches(), plain.len() as u64);
        assert!(
            rec.attempts() >= rec.matches(),
            "every match costs at least one candidate attempt: {} < {}",
            rec.attempts(),
            rec.matches()
        );
        // The empty pattern has one match and zero candidates to try.
        let empty = Pattern::new();
        let rec = CellRecorder::new();
        Matcher::with_recorder(&empty, &g, MatchOptions::homomorphism(), &rec)
            .for_each(|_| ControlFlow::Continue(()));
        assert_eq!((rec.attempts(), rec.matches()), (0, 1));
    }

    #[test]
    fn matches_brute_force_on_small_cases() {
        let g = creator_graph();
        {
            let (name, q) = ("q1", q1());
            let fast: std::collections::HashSet<Match> =
                find_all(&q, &g, MatchOptions::homomorphism())
                    .into_iter()
                    .collect();
            let brute: std::collections::HashSet<Match> =
                find_all_brute(&q, &g, MatchOptions::homomorphism())
                    .into_iter()
                    .collect();
            assert_eq!(fast, brute, "{name}");
        }
    }
}
