//! Graph patterns `Q[x̄]` (Section 2).
//!
//! A pattern is a directed graph `(V_Q, E_Q, L_Q)` whose nodes are the
//! variables `x̄`. Node labels come from `Γ` or are the wildcard `_`; edge
//! labels likewise (the paper's figures use concrete edge labels, but the
//! matcher supports wildcard edges too, as required by "when ι is `_` there
//! may exist multiple edges e′ with ι ⪯ ι′").
//!
//! Two pattern-level operations from the paper live here:
//! * **copy via a bijection** (Section 2): `Q2[ȳ]` is a copy of `Q1[x̄]`
//!   with variables renamed — the building block of GKeys;
//! * the **canonical graph** `G_Q` (Section 5.2): the pattern itself viewed
//!   as a data graph with empty attribute tuples (wildcard labels kept as a
//!   special label, per Section 4 "we treat `_` in Q as a special label").

use ged_graph::{Graph, NodeId, Symbol};
use std::fmt;

/// A pattern variable: dense index into the pattern's variable list `x̄`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A pattern edge `(src, label, dst)` between variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternEdge {
    /// Source variable.
    pub src: Var,
    /// Edge label (may be wildcard).
    pub label: Symbol,
    /// Destination variable.
    pub dst: Var,
}

/// A graph pattern `Q[x̄] = (V_Q, E_Q, L_Q)`.
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    labels: Vec<Symbol>,
    names: Vec<String>,
    edges: Vec<PatternEdge>,
    out: Vec<Vec<(Symbol, Var)>>,
    inn: Vec<Vec<(Symbol, Var)>>,
}

impl Pattern {
    /// An empty pattern.
    pub fn new() -> Pattern {
        Pattern::default()
    }

    /// Add a variable named `name` with node label `label` (use `"_"` for
    /// the wildcard). Returns the new [`Var`].
    pub fn var(&mut self, name: &str, label: &str) -> Var {
        self.var_sym(name, Symbol::new(label))
    }

    /// As [`Pattern::var`] with an already-interned label.
    pub fn var_sym(&mut self, name: &str, label: Symbol) -> Var {
        debug_assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate pattern variable name {name:?}"
        );
        let v = Var(self.labels.len() as u32);
        self.labels.push(label);
        self.names.push(name.to_string());
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        v
    }

    /// Add edge `src -[label]-> dst` (label `"_"` for wildcard).
    pub fn edge(&mut self, src: Var, label: &str, dst: Var) {
        self.edge_sym(src, Symbol::new(label), dst);
    }

    /// As [`Pattern::edge`] with an already-interned label.
    pub fn edge_sym(&mut self, src: Var, label: Symbol, dst: Var) {
        self.edges.push(PatternEdge { src, label, dst });
        self.out[src.idx()].push((label, dst));
        self.inn[dst.idx()].push((label, src));
    }

    /// Number of variables `|x̄|`.
    pub fn var_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of pattern edges `|E_Q|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Pattern size `|Q| = |V_Q| + |E_Q|` (the bound `k` of Section 5.3).
    pub fn size(&self) -> usize {
        self.var_count() + self.edge_count()
    }

    /// All variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.labels.len() as u32).map(Var)
    }

    /// The label `L_Q(v)`.
    pub fn label(&self, v: Var) -> Symbol {
        self.labels[v.idx()]
    }

    /// The declared name of `v`.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.idx()]
    }

    /// Look up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// All pattern edges.
    pub fn pattern_edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// Outgoing `(label, dst)` pairs of `v`.
    pub fn out_edges(&self, v: Var) -> &[(Symbol, Var)] {
        &self.out[v.idx()]
    }

    /// Incoming `(label, src)` pairs of `v`.
    pub fn in_edges(&self, v: Var) -> &[(Symbol, Var)] {
        &self.inn[v.idx()]
    }

    /// Degree (in + out) of `v` — used by the matcher's variable ordering.
    pub fn degree(&self, v: Var) -> usize {
        self.out[v.idx()].len() + self.inn[v.idx()].len()
    }

    /// The canonical graph `G_Q` (Section 5.2): the pattern as a data graph
    /// with empty attribute tuples. The wildcard survives as the node label
    /// `_`, which the chase's label-matching treats as a special label.
    pub fn canonical_graph(&self) -> Graph {
        let mut g = Graph::new();
        for v in self.vars() {
            g.add_node(self.label(v));
        }
        for e in &self.edges {
            g.add_edge(NodeId(e.src.0), e.label, NodeId(e.dst.0));
        }
        g
    }

    /// A *copy of `Q` via a bijection* (Section 2): the same pattern with
    /// every variable renamed by `rename` (e.g. `x → x'`). Returns the copy
    /// and the bijection `f : x̄ → ȳ` as a vector indexed by the original
    /// variable.
    pub fn copy_via(&self, rename: impl Fn(&str) -> String) -> (Pattern, Vec<Var>) {
        let mut q = Pattern::new();
        let mut f = Vec::with_capacity(self.var_count());
        for v in self.vars() {
            f.push(q.var_sym(&rename(self.name(v)), self.label(v)));
        }
        for e in &self.edges {
            q.edge_sym(f[e.src.idx()], e.label, f[e.dst.idx()]);
        }
        (q, f)
    }

    /// Disjoint union `Q ⊎ Q'`: appends `other`'s variables after `self`'s.
    /// Returns the combined pattern and the offset mapping `other`'s
    /// variables (`Var(v.0 + offset)`); names are kept, so they must not
    /// clash (callers rename via [`Pattern::copy_via`] first).
    pub fn disjoint_union(&self, other: &Pattern) -> (Pattern, u32) {
        let mut q = self.clone();
        let offset = q.var_count() as u32;
        for v in other.vars() {
            q.var_sym(other.name(v), other.label(v));
        }
        for e in &other.edges {
            q.edge_sym(Var(e.src.0 + offset), e.label, Var(e.dst.0 + offset));
        }
        (q, offset)
    }

    /// Is the pattern (weakly) connected? Used by generators and by the
    /// satisfiability model construction.
    pub fn is_connected(&self) -> bool {
        let n = self.var_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(_, d) in &self.out[v] {
                if !seen[d.idx()] {
                    seen[d.idx()] = true;
                    count += 1;
                    stack.push(d.idx());
                }
            }
            for &(_, s) in &self.inn[v] {
                if !seen[s.idx()] {
                    seen[s.idx()] = true;
                    count += 1;
                    stack.push(s.idx());
                }
            }
        }
        count == n
    }

    /// The weakly-connected components, each as a sorted list of variables.
    pub fn components(&self) -> Vec<Vec<Var>> {
        let n = self.var_count();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = next;
            next += 1;
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(v) = stack.pop() {
                let nbrs: Vec<usize> = self.out[v]
                    .iter()
                    .map(|&(_, d)| d.idx())
                    .chain(self.inn[v].iter().map(|&(_, s)| s.idx()))
                    .collect();
                for u in nbrs {
                    if comp[u] == usize::MAX {
                        comp[u] = c;
                        stack.push(u);
                    }
                }
            }
        }
        let mut groups = vec![Vec::new(); next];
        for (v, &c) in comp.iter().enumerate() {
            groups[c].push(Var(v as u32));
        }
        groups
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vars: Vec<String> = self
            .vars()
            .map(|v| format!("{}:{}", self.name(v), self.label(v)))
            .collect();
        write!(f, "Q[{}]", vars.join(", "))?;
        if !self.edges.is_empty() {
            let edges: Vec<String> = self
                .edges
                .iter()
                .map(|e| format!("{} -[{}]-> {}", self.name(e.src), e.label, self.name(e.dst)))
                .collect();
            write!(f, " {{ {} }}", edges.join("; "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut q = Pattern::new();
        let x = q.var("x", "person");
        let y = q.var("y", "product");
        q.edge(x, "create", y);
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.edge_count(), 1);
        assert_eq!(q.size(), 3);
        assert_eq!(q.label(x), Symbol::new("person"));
        assert_eq!(q.name(y), "y");
        assert_eq!(q.var_by_name("x"), Some(x));
        assert_eq!(q.var_by_name("zzz"), None);
        assert_eq!(q.degree(x), 1);
        assert_eq!(q.out_edges(x), &[(Symbol::new("create"), y)]);
        assert_eq!(q.in_edges(y), &[(Symbol::new("create"), x)]);
    }

    #[test]
    fn canonical_graph_mirrors_pattern() {
        let mut q = Pattern::new();
        let x = q.var("x", "_");
        let y = q.var("y", "b");
        q.edge(x, "e", y);
        let g = q.canonical_graph();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(
            g.label(NodeId(0)),
            Symbol::WILDCARD,
            "wildcard survives in G_Q"
        );
        assert_eq!(g.label(NodeId(1)), Symbol::new("b"));
        assert!(g.has_edge(NodeId(0), Symbol::new("e"), NodeId(1)));
        assert!(g.attrs(NodeId(0)).is_empty(), "G_Q has empty F_A");
    }

    #[test]
    fn copy_via_bijection() {
        let mut q = Pattern::new();
        let x = q.var("x", "album");
        let xp = q.var("x2", "artist");
        q.edge(x, "by", xp);
        let (copy, f) = q.copy_via(|n| format!("{n}_c"));
        assert_eq!(copy.var_count(), 2);
        assert_eq!(copy.name(f[x.idx()]), "x_c");
        assert_eq!(copy.label(f[x.idx()]), Symbol::new("album"));
        assert_eq!(copy.edge_count(), 1);
        let e = copy.pattern_edges()[0];
        assert_eq!(e.src, f[x.idx()]);
        assert_eq!(e.dst, f[xp.idx()]);
    }

    #[test]
    fn disjoint_union_offsets() {
        let mut q1 = Pattern::new();
        q1.var("x", "a");
        let mut q2 = Pattern::new();
        let u = q2.var("u", "b");
        let v = q2.var("v", "c");
        q2.edge(u, "e", v);
        let (q, off) = q1.disjoint_union(&q2);
        assert_eq!(off, 1);
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.edge_count(), 1);
        assert_eq!(q.label(Var(1)), Symbol::new("b"));
        let e = q.pattern_edges()[0];
        assert_eq!((e.src, e.dst), (Var(1), Var(2)));
    }

    #[test]
    fn connectivity() {
        let mut q = Pattern::new();
        let x = q.var("x", "a");
        let y = q.var("y", "a");
        assert!(!q.is_connected());
        assert_eq!(q.components().len(), 2);
        q.edge(x, "e", y);
        assert!(q.is_connected());
        assert_eq!(q.components(), vec![vec![x, y]]);
        // Empty and singleton are connected.
        assert!(Pattern::new().is_connected());
    }

    #[test]
    fn display_is_readable() {
        let mut q = Pattern::new();
        let x = q.var("x", "person");
        let y = q.var("y", "product");
        q.edge(x, "create", y);
        let s = q.to_string();
        assert!(s.contains("x:person"));
        assert!(s.contains("-[create]->"));
    }
}
