//! # ged-pattern — graph patterns and matchers
//!
//! Patterns `Q[x̄]` of *Dependencies for Graphs* (Fan & Lu, PODS 2017),
//! Section 2, together with the two pattern-matching semantics the paper
//! contrasts:
//!
//! * [`matcher`] — **homomorphism** (the GED semantics) and **subgraph
//!   isomorphism** (the semantics of the earlier GFD/keys papers, kept as a
//!   baseline for the Section 3 comparison), both on one backtracking
//!   engine with toggleable heuristics;
//! * [`pattern`] — the pattern type, copies-via-bijection (GKeys), disjoint
//!   unions, and the canonical graph `G_Q`;
//! * [`dsl`] — a textual notation so fixtures read like the paper;
//! * [`fragments`] — the exact patterns/graphs of Figures 1–4.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod dsl;
pub mod fragments;
pub mod matcher;
pub mod pattern;

pub use dsl::parse_pattern;
pub use matcher::{
    count, exists, find_all, find_first, is_match, Match, MatchOptions, MatchScratch, Matcher,
    Semantics,
};
pub use pattern::{Pattern, PatternEdge, Var};

// Re-export the matcher's observability hook so downstream crates can
// name the recorder bound without depending on `ged-obs` directly.
pub use ged_obs::{CellRecorder, MatchRecorder, NoopRecorder};

#[cfg(test)]
mod proptests {
    use super::*;
    use ged_graph::{sym, Graph, NodeId};
    use proptest::prelude::*;

    const NODE_LABELS: [&str; 3] = ["a", "b", "_"];
    const EDGE_LABELS: [&str; 3] = ["e", "f", "_"];
    const DATA_LABELS: [&str; 2] = ["a", "b"];
    const DATA_ELABELS: [&str; 2] = ["e", "f"];

    fn arb_graph() -> impl Strategy<Value = Graph> {
        (1usize..6).prop_flat_map(|n| {
            let nls = proptest::collection::vec(0usize..DATA_LABELS.len(), n);
            let es = proptest::collection::vec((0..n, 0usize..DATA_ELABELS.len(), 0..n), 0..n * 2);
            (nls, es).prop_map(|(nls, es)| {
                let mut g = Graph::new();
                for &l in &nls {
                    g.add_node(sym(DATA_LABELS[l]));
                }
                for (s, l, d) in es {
                    g.add_edge(NodeId(s as u32), sym(DATA_ELABELS[l]), NodeId(d as u32));
                }
                g
            })
        })
    }

    fn arb_pattern() -> impl Strategy<Value = Pattern> {
        (1usize..4).prop_flat_map(|n| {
            let nls = proptest::collection::vec(0usize..NODE_LABELS.len(), n);
            let es = proptest::collection::vec((0..n, 0usize..EDGE_LABELS.len(), 0..n), 0..n);
            (nls, es).prop_map(|(nls, es)| {
                let mut q = Pattern::new();
                for (i, &l) in nls.iter().enumerate() {
                    q.var(&format!("v{i}"), NODE_LABELS[l]);
                }
                for (s, l, d) in es {
                    q.edge(Var(s as u32), EDGE_LABELS[l], Var(d as u32));
                }
                q
            })
        })
    }

    proptest! {
        /// The backtracking engine agrees with brute-force enumeration on
        /// both semantics — the key correctness property of the matcher.
        #[test]
        fn engine_agrees_with_brute_force(g in arb_graph(), q in arb_pattern()) {
            for sem in [Semantics::Homomorphism, Semantics::Isomorphism] {
                let opts = MatchOptions { semantics: sem, ..MatchOptions::default() };
                let fast: std::collections::HashSet<Match> =
                    matcher::find_all(&q, &g, opts).into_iter().collect();
                let brute: std::collections::HashSet<Match> =
                    matcher::find_all_brute(&q, &g, opts).into_iter().collect();
                prop_assert_eq!(fast, brute);
            }
        }

        /// Every isomorphism match is also a homomorphism match.
        #[test]
        fn iso_matches_subset_of_homo(g in arb_graph(), q in arb_pattern()) {
            let homo: std::collections::HashSet<Match> =
                matcher::find_all(&q, &g, MatchOptions::homomorphism()).into_iter().collect();
            let iso: std::collections::HashSet<Match> =
                matcher::find_all(&q, &g, MatchOptions::isomorphism()).into_iter().collect();
            prop_assert!(iso.is_subset(&homo));
        }

        /// Heuristic toggles never change the match set.
        #[test]
        fn heuristics_preserve_matches(g in arb_graph(), q in arb_pattern()) {
            let base: std::collections::HashSet<Match> =
                matcher::find_all(&q, &g, MatchOptions::homomorphism()).into_iter().collect();
            for smart in [false, true] {
                for adj in [false, true] {
                    for lab in [false, true] {
                        for pre in [false, true] {
                            let opts = MatchOptions {
                                semantics: Semantics::Homomorphism,
                                smart_order: smart,
                                adjacency_candidates: adj,
                                labeled_adjacency: lab,
                                prefilter: pre,
                            };
                            let got: std::collections::HashSet<Match> =
                                matcher::find_all(&q, &g, opts).into_iter().collect();
                            prop_assert_eq!(&got, &base);
                        }
                    }
                }
            }
        }

        /// A pattern always matches its own canonical graph (identity map),
        /// under homomorphism.
        #[test]
        fn pattern_matches_canonical_graph(q in arb_pattern()) {
            let g = q.canonical_graph();
            let ident: Vec<NodeId> = q.vars().map(|v| NodeId(v.0)).collect();
            prop_assert!(matcher::is_match(&q, &g, &ident, Semantics::Homomorphism));
        }

        /// Copies via bijection preserve labels and shape.
        #[test]
        fn copies_are_isomorphic(q in arb_pattern()) {
            let (c, f) = q.copy_via(|n| format!("{n}_r"));
            prop_assert_eq!(q.var_count(), c.var_count());
            prop_assert_eq!(q.edge_count(), c.edge_count());
            for v in q.vars() {
                prop_assert_eq!(q.label(v), c.label(f[v.idx()]));
            }
        }
    }
}
