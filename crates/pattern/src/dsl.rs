//! A tiny textual DSL for patterns, so tests and examples read like the
//! paper's figures.
//!
//! Grammar (whitespace-insensitive, statements separated by `;` or
//! newlines, `#` comments to end of line):
//!
//! ```text
//! pattern   := statement*
//! statement := noderef (edge noderef)*
//! noderef   := label '(' var ')'   // declares var (or re-checks label)
//!            | '(' var ')'         // references an existing var
//! edge      := '-[' label ']->'    // forward edge
//!            | '<-[' label ']-'    // backward edge
//! ```
//!
//! `_` is the wildcard label for both nodes and edges. Example — the
//! paper's `Q1[x, y]` (Figure 1):
//!
//! ```
//! use ged_pattern::dsl::parse_pattern;
//! let q = parse_pattern("person(x) -[create]-> product(y)").unwrap();
//! assert_eq!(q.var_count(), 2);
//! assert_eq!(q.edge_count(), 1);
//! ```

use crate::pattern::{Pattern, Var};
use std::fmt;

/// DSL parse error with position info.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based statement number.
    pub statement: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern DSL, statement {}: {}",
            self.statement, self.message
        )
    }
}

impl std::error::Error for DslError {}

#[derive(Debug, PartialEq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    ArrowFwd(String),  // -[label]->
    ArrowBack(String), // <-[label]-
}

fn tokenize(stmt: &str, sno: usize) -> Result<Vec<Tok>, DslError> {
    let err = |m: String| DslError {
        statement: sno,
        message: m,
    };
    let chars: Vec<char> = stmt.chars().collect();
    let mut i = 0;
    let mut toks = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '(' {
            toks.push(Tok::LParen);
            i += 1;
        } else if c == ')' {
            toks.push(Tok::RParen);
            i += 1;
        } else if c == '-' || c == '<' {
            // -[label]->  or  <-[label]-
            let back = c == '<';
            let rest: String = chars[i..].iter().collect();
            let prefix = if back { "<-[" } else { "-[" };
            if !rest.starts_with(prefix) {
                return Err(err(format!("bad edge syntax near {:?}", &rest)));
            }
            let after = &rest[prefix.len()..];
            let Some(close) = after.find(']') else {
                return Err(err("unterminated edge label (missing ])".into()));
            };
            let label = after[..close].trim().to_string();
            if label.is_empty() {
                return Err(err("empty edge label".into()));
            }
            let tail = &after[close + 1..];
            let suffix = if back { "-" } else { "->" };
            if !tail.starts_with(suffix) {
                return Err(err(format!("edge must end with {suffix:?}")));
            }
            i += prefix.len() + close + 1 + suffix.len();
            toks.push(if back {
                Tok::ArrowBack(label)
            } else {
                Tok::ArrowFwd(label)
            });
        } else if c.is_alphanumeric() || c == '_' || c == '\'' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '\'')
            {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect()));
        } else {
            return Err(err(format!("unexpected character {c:?}")));
        }
    }
    Ok(toks)
}

/// Parse the DSL into a [`Pattern`].
pub fn parse_pattern(input: &str) -> Result<Pattern, DslError> {
    let mut q = Pattern::new();
    let statements = input
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    for (sno, stmt) in statements
        .split([';', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .enumerate()
    {
        parse_statement(stmt, sno + 1, &mut q)?;
    }
    Ok(q)
}

fn parse_statement(stmt: &str, sno: usize, q: &mut Pattern) -> Result<(), DslError> {
    let err = |m: String| DslError {
        statement: sno,
        message: m,
    };
    let toks = tokenize(stmt, sno)?;
    let mut pos = 0;

    let node = |pos: &mut usize, q: &mut Pattern| -> Result<Var, DslError> {
        // label '(' var ')'  |  '(' var ')'
        let label: Option<String> = match toks.get(*pos) {
            Some(Tok::Ident(l)) => {
                *pos += 1;
                Some(l.clone())
            }
            Some(Tok::LParen) => None,
            other => return Err(err(format!("expected node, found {other:?}"))),
        };
        if toks.get(*pos) != Some(&Tok::LParen) {
            return Err(err("expected '(' after node label".into()));
        }
        *pos += 1;
        let Some(Tok::Ident(var)) = toks.get(*pos) else {
            return Err(err("expected variable name inside parens".into()));
        };
        let var = var.clone();
        *pos += 1;
        if toks.get(*pos) != Some(&Tok::RParen) {
            return Err(err("expected ')' after variable name".into()));
        }
        *pos += 1;
        match (q.var_by_name(&var), label) {
            (Some(v), None) => Ok(v),
            (Some(v), Some(l)) => {
                if q.label(v).name() != l {
                    Err(err(format!(
                        "variable {var:?} re-declared with label {l:?}, was {:?}",
                        q.label(v).name()
                    )))
                } else {
                    Ok(v)
                }
            }
            (None, Some(l)) => Ok(q.var(&var, &l)),
            (None, None) => Err(err(format!(
                "variable {var:?} referenced before declaration (give it a label)"
            ))),
        }
    };

    let mut prev = node(&mut pos, q)?;
    while pos < toks.len() {
        match &toks[pos] {
            Tok::ArrowFwd(label) => {
                pos += 1;
                let next = node(&mut pos, q)?;
                q.edge(prev, label, next);
                prev = next;
            }
            Tok::ArrowBack(label) => {
                pos += 1;
                let next = node(&mut pos, q)?;
                q.edge(next, label, prev);
                prev = next;
            }
            other => return Err(err(format!("expected edge, found {other:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::Symbol;

    #[test]
    fn single_edge() {
        let q = parse_pattern("person(x) -[create]-> product(y)").unwrap();
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.edge_count(), 1);
        let e = q.pattern_edges()[0];
        assert_eq!(q.name(e.src), "x");
        assert_eq!(q.name(e.dst), "y");
        assert_eq!(e.label, Symbol::new("create"));
    }

    #[test]
    fn chains_and_reuse() {
        let q = parse_pattern("country(x) -[capital]-> city(y); (x) -[capital]-> city(z)").unwrap();
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.edge_count(), 2);
        let x = q.var_by_name("x").unwrap();
        assert_eq!(q.out_edges(x).len(), 2);
    }

    #[test]
    fn backward_edges() {
        let q = parse_pattern("_(x) <-[is_a]- _(y)").unwrap();
        let e = q.pattern_edges()[0];
        assert_eq!(q.name(e.src), "y");
        assert_eq!(q.name(e.dst), "x");
        assert!(q.label(e.src).is_wildcard());
    }

    #[test]
    fn primes_in_variable_names() {
        let q = parse_pattern("album(x) -[by]-> artist(x'); album(y) -[by]-> artist(y')").unwrap();
        assert_eq!(q.var_count(), 4);
        assert!(q.var_by_name("x'").is_some());
    }

    #[test]
    fn isolated_nodes() {
        let q = parse_pattern("album(x)\nalbum(y)").unwrap();
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.edge_count(), 0);
    }

    #[test]
    fn comments_are_ignored() {
        let q =
            parse_pattern("# Figure 1, Q1\nperson(x) -[create]-> product(y) # trailing").unwrap();
        assert_eq!(q.var_count(), 2);
    }

    #[test]
    fn error_on_undeclared_reference() {
        let e = parse_pattern("(x) -[e]-> t(y)").unwrap_err();
        assert!(e.message.contains("before declaration"));
    }

    #[test]
    fn error_on_label_conflict() {
        let e = parse_pattern("a(x); b(x)").unwrap_err();
        assert!(e.message.contains("re-declared"));
        assert_eq!(e.statement, 2);
    }

    #[test]
    fn error_on_bad_edge() {
        assert!(parse_pattern("a(x) -[e] a(y)").is_err());
        assert!(parse_pattern("a(x) -[]-> a(y)").is_err());
        assert!(parse_pattern("a(x) -[e-> a(y)").is_err());
        assert!(parse_pattern("a(x) a(y)").is_err());
    }

    #[test]
    fn wildcard_edge_label() {
        let q = parse_pattern("_(x) -[_]-> _(y)").unwrap();
        assert!(q.pattern_edges()[0].label.is_wildcard());
    }
}
