//! # ged-repro — umbrella crate for the GED reproduction
//!
//! Re-exports the workspace crates as a single dependency and provides the
//! [`prelude`] used by the runnable examples in `examples/` and the
//! integration tests in `tests/`.
//!
//! The system reproduces *Dependencies for Graphs* (Fan & Lu, PODS 2017):
//! see `DESIGN.md` for the crate inventory, the experiment catalogue, and
//! the incremental engine's affected-area algorithm.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub use ged_analysis as analysis;
pub use ged_core as core;
pub use ged_datagen as datagen;
pub use ged_engine as engine;
pub use ged_ext as ext;
pub use ged_graph as graph;
pub use ged_obs as obs;
pub use ged_pattern as pattern;

/// Everything needed to define graphs, patterns and constraints (GEDs,
/// GDCs, GED∨s) and run the reasoning procedures.
pub mod prelude {
    pub use ged_analysis::{
        analyze, analyze_with_costs, AnalysisReport, Diagnostic, LintKind, Pruned, RuleCost,
        Severity,
    };
    pub use ged_core::axiom::completeness::prove;
    pub use ged_core::axiom::derived::{
        prove_augmentation, prove_reflexivity, prove_transitivity, ProofBuilder,
    };
    pub use ged_core::chase::{chase, chase_from, chase_random, ChaseResult};
    pub use ged_core::constraint::{
        constraint_sigma_size, AnyConstraint, Constraint, LiteralView, ViolationKind,
    };
    pub use ged_core::ged::{Ged, GedClass};
    pub use ged_core::literal::Literal;
    pub use ged_core::reason::{
        build_model, implies, is_satisfiable, minimize, validate, Validator,
    };
    pub use ged_core::satisfy::{is_model, satisfies, satisfies_all, violations};
    pub use ged_engine::{
        validate_parallel, validate_rules_parallel, violations_sharded, AnalysisConfig, ApplyStats,
        DeployAnalysis, IncrementalValidator, MetricsSnapshot, Phase, ReadView, SeedStats,
        ViolationSnapshot, ViolationStore,
    };
    pub use ged_ext::{
        disj_implies, disj_satisfiable, disj_satisfies, gdc_implies, gdc_satisfiable,
        gdc_satisfies, DisjGed, Gdc, GdcLiteral, NormConstraint, Pred, SigmaConstraint,
    };
    pub use ged_graph::{
        sym, Delta, DeltaEffect, DeltaSet, Graph, GraphBuilder, NodeId, Symbol, Value,
    };
    pub use ged_obs::{CellRecorder, MatchRecorder, NoopRecorder};
    pub use ged_pattern::{parse_pattern, MatchOptions, MatchScratch, Pattern, Semantics, Var};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let q = parse_pattern("t(x)").unwrap();
        let g = Ged::new("g", q, vec![], vec![]);
        assert!(satisfies(&Graph::new(), &g));
    }
}
